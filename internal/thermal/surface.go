package thermal

// Surface maps: a 2D steady-state solver for the temperature distribution
// across the back cover, in the spirit of Therminator (Xie et al.,
// ISLPED 2014 — the paper's reference [8], which produces "accurate chip
// and skin temperature maps"). The lumped network answers *when* the cover
// gets hot; the surface map answers *where* — and shows why the paper
// instruments the cover midsection (over the battery/PCB) as "the skin
// temperature".
//
// The cover is a W×H cell grid. Each cell conducts laterally to its four
// neighbours (conductance KLat), convects to ambient (GAmb per cell), and
// receives heat from component footprints projected onto the cover.
// Steady state solves the linear balance with Gauss–Seidel + successive
// over-relaxation, which converges quickly on these diffusion-dominated
// grids.

import (
	"fmt"
	"math"
	"strings"
)

// HeatSource is a rectangular component footprint projected onto the cover
// grid, dissipating Watts uniformly over its cells.
type HeatSource struct {
	X, Y  int // top-left cell
	W, H  int // extent in cells
	Watts float64
}

// SurfaceConfig parameterizes the cover grid.
type SurfaceConfig struct {
	// W, H are the grid dimensions in cells (phone held portrait: W across,
	// H top-to-bottom).
	W, H int
	// KLat is the lateral conductance between adjacent cells (W/K).
	KLat float64
	// GAmb is each cell's conductance to ambient (W/K).
	GAmb float64
	// Ambient is the ambient temperature (°C).
	Ambient float64
}

// SurfaceMap is a solved temperature field.
type SurfaceMap struct {
	W, H int
	T    []float64 // row-major, T[y*W+x], °C
}

// At returns the temperature of cell (x, y).
func (m *SurfaceMap) At(x, y int) float64 { return m.T[y*m.W+x] }

// Max returns the hottest cell and its location.
func (m *SurfaceMap) Max() (tC float64, x, y int) {
	tC = math.Inf(-1)
	for yy := 0; yy < m.H; yy++ {
		for xx := 0; xx < m.W; xx++ {
			if v := m.At(xx, yy); v > tC {
				tC, x, y = v, xx, yy
			}
		}
	}
	return tC, x, y
}

// Mean returns the average surface temperature.
func (m *SurfaceMap) Mean() float64 {
	var s float64
	for _, v := range m.T {
		s += v
	}
	return s / float64(len(m.T))
}

// SolveSurface computes the steady-state temperature field for the given
// sources. It returns an error for malformed grids or footprints outside
// the grid.
func SolveSurface(cfg SurfaceConfig, sources []HeatSource) (*SurfaceMap, error) {
	if cfg.W < 2 || cfg.H < 2 {
		return nil, fmt.Errorf("thermal: surface grid must be at least 2x2, got %dx%d", cfg.W, cfg.H)
	}
	if cfg.KLat <= 0 || cfg.GAmb <= 0 {
		return nil, fmt.Errorf("thermal: surface conductances must be positive")
	}
	power := make([]float64, cfg.W*cfg.H)
	for _, s := range sources {
		if s.W <= 0 || s.H <= 0 || s.X < 0 || s.Y < 0 || s.X+s.W > cfg.W || s.Y+s.H > cfg.H {
			return nil, fmt.Errorf("thermal: heat source %+v outside %dx%d grid", s, cfg.W, cfg.H)
		}
		per := s.Watts / float64(s.W*s.H)
		for y := s.Y; y < s.Y+s.H; y++ {
			for x := s.X; x < s.X+s.W; x++ {
				power[y*cfg.W+x] += per
			}
		}
	}

	m := &SurfaceMap{W: cfg.W, H: cfg.H, T: make([]float64, cfg.W*cfg.H)}
	for i := range m.T {
		m.T[i] = cfg.Ambient
	}
	// Gauss–Seidel with over-relaxation. Each sweep solves
	//   T_c = (P_c + KLat·ΣT_n + GAmb·Tamb) / (KLat·n + GAmb)
	const omega = 1.7
	const maxSweeps = 20000
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var maxDelta float64
		for y := 0; y < cfg.H; y++ {
			for x := 0; x < cfg.W; x++ {
				i := y*cfg.W + x
				var sumN float64
				n := 0
				if x > 0 {
					sumN += m.T[i-1]
					n++
				}
				if x < cfg.W-1 {
					sumN += m.T[i+1]
					n++
				}
				if y > 0 {
					sumN += m.T[i-cfg.W]
					n++
				}
				if y < cfg.H-1 {
					sumN += m.T[i+cfg.W]
					n++
				}
				tNew := (power[i] + cfg.KLat*sumN + cfg.GAmb*cfg.Ambient) /
					(cfg.KLat*float64(n) + cfg.GAmb)
				tNew = m.T[i] + omega*(tNew-m.T[i])
				if d := math.Abs(tNew - m.T[i]); d > maxDelta {
					maxDelta = d
				}
				m.T[i] = tNew
			}
		}
		if maxDelta < 1e-9 {
			return m, nil
		}
	}
	return nil, fmt.Errorf("thermal: surface solve did not converge")
}

// PhoneCoverConfig returns the grid used for the simulated handset's back
// cover: 16×28 cells over a ~66×133 mm cover. KLat/GAmb are chosen so the
// total ambient conductance matches the lumped model's cover path and the
// lateral spreading produces a few-°C center-to-edge gradient, as thermal
// cameras show on real phones.
func PhoneCoverConfig(ambient float64) SurfaceConfig {
	cfg := SurfaceConfig{W: 16, H: 28, Ambient: ambient}
	cells := float64(cfg.W * cfg.H)
	// Each cell's sink combines convection to ambient with conduction back
	// into the frame and air gap (which ultimately reach ambient through
	// the other faces): a ~3 W dissipation split should produce a mean
	// cover rise in the low-to-mid teens of °C, as the lumped model does.
	cfg.GAmb = 0.19 / cells
	cfg.KLat = 0.12 // plastic cover with a thin graphite spreader
	return cfg
}

// PhoneCoverSources projects the handset's main dissipators onto the cover
// grid for the given component powers (W): the SoC sits in the upper
// third, the battery fills the middle, the PMIC/RF strip sits beside the
// SoC.
func PhoneCoverSources(cfg SurfaceConfig, socW, batteryW, boardW float64) []HeatSource {
	return []HeatSource{
		// SoC: upper-centre. The footprint is wider than the die because
		// heat spreads through the PCB and shield can before reaching the
		// cover.
		{X: cfg.W/2 - 3, Y: cfg.H / 6, W: 6, H: 6, Watts: socW},
		// Battery: broad central slab.
		{X: 2, Y: cfg.H/2 - 5, W: cfg.W - 4, H: 12, Watts: batteryW},
		// PMIC / RF strip along the upper edge.
		{X: 1, Y: 1, W: cfg.W - 2, H: 2, Watts: boardW},
	}
}

// Render returns an ASCII heat map: one character per cell from the ramp
// " .:-=+*#%@" scaled between the map's min and max.
func (m *SurfaceMap) Render() string {
	ramp := []byte(" .:-=+*#%@")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range m.T {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "back cover, %.1f–%.1f °C\n", lo, hi)
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			idx := int((m.At(x, y) - lo) / (hi - lo) * float64(len(ramp)-1))
			b.WriteByte(ramp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
