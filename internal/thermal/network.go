// Package thermal implements a lumped-parameter (compartmental RC) thermal
// network simulator. It stands in for the physical heat flow of the paper's
// instrumented Google Nexus 4: heat generated in the SoC die, battery and
// display spreads through internal thermal resistances to the back cover and
// screen, which exchange heat with the ambient (and with the user's hand).
//
// An RC network is the standard abstraction for smartphone-scale thermal
// modelling (e.g. Therminator, ISLPED 2014, cited by the paper): each
// physical component is a node with a thermal capacitance (J/K) and a
// temperature, and pairs of nodes are coupled by thermal resistances (K/W).
// Power sources inject heat at nodes; "baths" model isothermal reservoirs
// such as the ambient air or a human palm.
package thermal

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/mat"
)

// NodeID identifies a node within a Network.
type NodeID int

// BathRef identifies an isothermal-bath coupling attached to a node.
type BathRef struct {
	node NodeID
	idx  int
}

type bath struct {
	temp       float64 // bath temperature in °C (ignored if useAmbient)
	g          float64 // conductance in W/K (0 = disconnected)
	useAmbient bool    // track the network-wide ambient temperature
}

type edge struct {
	other NodeID
	g     float64 // conductance in W/K
}

// Network is a thermal RC network. The zero value is not usable; construct
// with NewNetwork.
type Network struct {
	ambient float64 // °C

	names []string
	caps  []float64 // J/K
	temps []float64 // °C
	power []float64 // W injected externally

	adj   [][]edge
	baths [][]bath

	// nameIdx backs Lookup; maintained eagerly by AddNode so Lookup stays
	// read-only (safe to call concurrently on a quiescent network).
	nameIdx map[string]NodeID

	// scratch buffers for the RK4 integrator
	k1, k2, k3, k4, tmp []float64

	// maxStableDt caches the largest internally-safe integration substep;
	// recomputed whenever topology or conductances change.
	maxStableDt float64
	dirty       bool

	// sig fingerprints the conductance configuration (capacitances, edges,
	// baths); props caches exact one-step propagators keyed by (sig, dt) in
	// most-recently-used order, so recurring configurations — e.g. the
	// touching / not-touching pair that ApplyTouch flips between — reuse
	// their precomputed matrices instead of rebuilding on every transition.
	sig      uint64
	props    []*propagator
	forceRK4 bool

	// ownTemps/ownPower/ownTmp hold the network's own state storage while
	// temps/power/tmp are borrowed from a shared StateBlock column (see
	// Gather/Scatter); nil when the network owns its state.
	ownTemps, ownPower, ownTmp []float64
}

// ErrEmpty is returned when an operation needs at least one node.
var ErrEmpty = errors.New("thermal: network has no nodes")

// NewNetwork creates an empty network with the given ambient temperature in
// degrees Celsius.
func NewNetwork(ambient float64) *Network {
	return &Network{ambient: ambient, dirty: true}
}

// ResetState returns every node to the network ambient temperature and
// clears all injected power, leaving topology, conductances and cached
// propagators untouched. For a network whose nodes were added at the
// ambient (thermal.NewPhone), this is exactly the freshly built state —
// device.Phone.Reset uses it to recycle networks across fleet jobs (bath
// couplings mutated by ApplyTouch are restored by the caller's follow-up
// ApplyTouch(false)).
func (n *Network) ResetState() {
	for i := range n.temps {
		n.temps[i] = n.ambient
		n.power[i] = 0
	}
}

// AddNode adds a node with the given name, thermal capacitance (J/K) and
// initial temperature (°C), returning its identifier.
func (n *Network) AddNode(name string, capacitance, initTemp float64) NodeID {
	if capacitance <= 0 {
		panic(fmt.Sprintf("thermal: node %q needs positive capacitance, got %v", name, capacitance))
	}
	id := NodeID(len(n.names))
	n.names = append(n.names, name)
	n.caps = append(n.caps, capacitance)
	n.temps = append(n.temps, initTemp)
	n.power = append(n.power, 0)
	n.adj = append(n.adj, nil)
	n.baths = append(n.baths, nil)
	if n.nameIdx == nil {
		n.nameIdx = make(map[string]NodeID, 8)
	}
	if _, exists := n.nameIdx[name]; !exists { // first registration wins
		n.nameIdx[name] = id
	}
	n.dirty = true
	return id
}

// NumNodes returns the number of nodes in the network.
func (n *Network) NumNodes() int { return len(n.names) }

// Name returns the name a node was registered with.
func (n *Network) Name(id NodeID) string { return n.names[id] }

// Lookup returns the node with the given name. Lookups are O(1) against
// the index AddNode maintains; if several nodes share a name, the first
// registered wins. Lookup never mutates the network.
func (n *Network) Lookup(name string) (NodeID, bool) {
	id, ok := n.nameIdx[name]
	if !ok {
		return -1, false
	}
	return id, true
}

// Connect couples nodes a and b with a thermal resistance in K/W.
func (n *Network) Connect(a, b NodeID, resistance float64) {
	if a == b {
		panic("thermal: cannot connect a node to itself")
	}
	if resistance <= 0 {
		panic(fmt.Sprintf("thermal: resistance must be positive, got %v", resistance))
	}
	g := 1 / resistance
	n.adj[a] = append(n.adj[a], edge{other: b, g: g})
	n.adj[b] = append(n.adj[b], edge{other: a, g: g})
	n.dirty = true
}

// ConnectAmbient couples node a to the network-wide ambient temperature with
// the given thermal resistance (K/W). The coupling tracks later SetAmbient
// calls.
func (n *Network) ConnectAmbient(a NodeID, resistance float64) BathRef {
	if resistance <= 0 {
		panic(fmt.Sprintf("thermal: resistance must be positive, got %v", resistance))
	}
	n.baths[a] = append(n.baths[a], bath{g: 1 / resistance, useAmbient: true})
	n.dirty = true
	return BathRef{node: a, idx: len(n.baths[a]) - 1}
}

// AddBath couples node a to an isothermal reservoir at the given temperature
// (°C) through the given resistance (K/W). Pass resistance <= 0 to create
// the bath initially disconnected (e.g. a hand that is not yet touching).
func (n *Network) AddBath(a NodeID, temp, resistance float64) BathRef {
	g := 0.0
	if resistance > 0 {
		g = 1 / resistance
	}
	n.baths[a] = append(n.baths[a], bath{temp: temp, g: g})
	n.dirty = true
	return BathRef{node: a, idx: len(n.baths[a]) - 1}
}

// SetBath reconfigures a bath's temperature and resistance. Pass
// resistance <= 0 to disconnect it.
func (n *Network) SetBath(ref BathRef, temp, resistance float64) {
	b := &n.baths[ref.node][ref.idx]
	b.temp = temp
	if resistance > 0 {
		b.g = 1 / resistance
	} else {
		b.g = 0
	}
	b.useAmbient = false
	n.dirty = true
}

// SetBathResistance changes only a bath's resistance, preserving its
// temperature configuration (including ambient tracking). Pass
// resistance <= 0 to disconnect.
func (n *Network) SetBathResistance(ref BathRef, resistance float64) {
	b := &n.baths[ref.node][ref.idx]
	if resistance > 0 {
		b.g = 1 / resistance
	} else {
		b.g = 0
	}
	n.dirty = true
}

// Ambient returns the ambient temperature in °C.
func (n *Network) Ambient() float64 { return n.ambient }

// SetAmbient changes the ambient temperature in °C.
func (n *Network) SetAmbient(t float64) { n.ambient = t }

// SetPower sets the externally injected power (W) at a node; it replaces any
// previous value.
func (n *Network) SetPower(id NodeID, watts float64) { n.power[id] = watts }

// Power returns the externally injected power (W) at a node.
func (n *Network) Power(id NodeID) float64 { return n.power[id] }

// Temp returns the current temperature (°C) of a node.
func (n *Network) Temp(id NodeID) float64 { return n.temps[id] }

// SetTemp overrides the current temperature (°C) of a node.
func (n *Network) SetTemp(id NodeID, t float64) { n.temps[id] = t }

// Temps copies all node temperatures into dst (allocating if nil) and
// returns it.
func (n *Network) Temps(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(n.temps))
	}
	copy(dst, n.temps)
	return dst
}

// deriv writes dT/dt for temperatures t into out.
func (n *Network) deriv(t, out []float64) {
	for i := range out {
		q := n.power[i]
		ti := t[i]
		for _, e := range n.adj[i] {
			q += e.g * (t[e.other] - ti)
		}
		for _, b := range n.baths[i] {
			bt := b.temp
			if b.useAmbient {
				bt = n.ambient
			}
			q += b.g * (bt - ti)
		}
		out[i] = q / n.caps[i]
	}
}

// mix64 is the splitmix64 finalizer, used to fingerprint configurations.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// refresh recomputes the stability-limited substep and the configuration
// fingerprint after topology or conductance changes.
func (n *Network) refresh() {
	n.maxStableDt = math.Inf(1)
	sig := mix64(uint64(len(n.caps)))
	for i := range n.caps {
		sig = mix64(sig ^ math.Float64bits(n.caps[i]))
		var g float64
		for _, e := range n.adj[i] {
			g += e.g
			sig = mix64(sig ^ uint64(e.other)<<32 ^ math.Float64bits(e.g))
		}
		for _, b := range n.baths[i] {
			g += b.g
			sig = mix64(sig ^ math.Float64bits(b.g))
			if b.useAmbient {
				sig = mix64(sig ^ 1)
			} else {
				sig = mix64(sig ^ math.Float64bits(b.temp))
			}
		}
		if g <= 0 {
			continue
		}
		// Explicit RK4 is stable for dt < ~2.78·C/G; keep a 4x margin for
		// accuracy as well as stability.
		if tau := n.caps[i] / g; tau/1.5 < n.maxStableDt {
			n.maxStableDt = tau / 1.5
		}
	}
	n.sig = sig
	if math.IsInf(n.maxStableDt, 1) {
		n.maxStableDt = 1 // fully isolated network: any step works
	}
	ln := len(n.caps)
	if cap(n.k1) < ln {
		n.k1 = make([]float64, ln)
		n.k2 = make([]float64, ln)
		n.k3 = make([]float64, ln)
		n.k4 = make([]float64, ln)
		// tmp is checked separately: it may be a borrowed StateBlock column
		// (see Gather), and reallocating it would silently detach the
		// network from its lockstep cohort's plane.
		if cap(n.tmp) < ln {
			n.tmp = make([]float64, ln)
		}
	}
	n.dirty = false
}

// Fingerprint returns the network's conductance-configuration signature —
// the key the propagator caches and the fleet's cohort grouping share.
// Networks built from identical configurations report identical
// fingerprints; any capacitance, edge or bath change produces a new one.
// Refreshes derived state first, so it is not safe to call concurrently
// with Step on the same network.
func (n *Network) Fingerprint() uint64 {
	if n.dirty {
		n.refresh()
	}
	return n.sig
}

// Gather moves the network's mutable state (temperatures, injected powers,
// integrator scratch) into column col of a shared StateBlock: the current
// values are copied in, and the network's temps/power/tmp slices are
// repointed to borrow the block's columns, so every subsequent
// SetPower/Temp/advance reads and writes the block directly — the
// lockstep batch engine advances many gathered networks with one fused
// mat-mat over adjacent columns. The network's own storage is retained and
// restored (with the live state copied back) by Scatter. Gathering an
// already-gathered network into a new block releases the old borrow
// without copying back.
func (n *Network) Gather(b *StateBlock, col int) {
	ln := len(n.temps)
	if ln > b.n {
		panic(fmt.Sprintf("thermal: Gather of a %d-node network into a %d-row block", ln, b.n))
	}
	// Refresh derived state first: the integrator scratch is allocated
	// lazily by refresh, and it must exist before ownership is recorded so
	// a post-borrow refresh never swaps a fresh allocation in under the
	// block's feet.
	if n.dirty {
		n.refresh()
	}
	temps, power, tmp := b.column(col, ln)
	copy(temps, n.temps)
	copy(power, n.power)
	if n.ownTemps == nil {
		n.ownTemps, n.ownPower, n.ownTmp = n.temps, n.power, n.tmp
	}
	n.temps, n.power, n.tmp = temps, power, tmp
}

// Scatter copies the live state back into the network's own storage and
// releases the borrowed StateBlock columns. A network that was never
// gathered is untouched.
func (n *Network) Scatter() {
	if n.ownTemps == nil {
		return
	}
	copy(n.ownTemps, n.temps)
	copy(n.ownPower, n.power)
	n.temps, n.power, n.tmp = n.ownTemps, n.ownPower, n.ownTmp
	n.ownTemps, n.ownPower, n.ownTmp = nil, nil, nil
}

// UseRK4 forces subsequent Steps onto the classical RK4 substepping
// integrator instead of the default matrix-exponential propagator. The RK4
// path is the differential-testing oracle and the fallback for callers that
// mutate the network faster than propagators are worth caching for.
func (n *Network) UseRK4(on bool) { n.forceRK4 = on }

// Step advances the network by dt seconds. The transient of an RC network
// is linear time-invariant between configuration changes, so the default
// engine advances it exactly with a cached matrix-exponential propagator
// (one dense mat-vec per step); see propagator.go. UseRK4 selects the
// classical RK4 substepping integrator instead.
func (n *Network) Step(dt float64) {
	if dt <= 0 || len(n.temps) == 0 {
		return
	}
	if n.forceRK4 {
		n.StepRK4(dt)
		return
	}
	if n.dirty {
		n.refresh()
	}
	p := n.propagatorFor(dt)
	if p == nil { // exp failed (degenerate configuration): integrate instead
		n.StepRK4(dt)
		return
	}
	p.advance(n)
}

// StepRK4 advances the network by dt seconds using classical RK4 with
// automatic substepping to remain inside the explicit stability region.
func (n *Network) StepRK4(dt float64) {
	if dt <= 0 {
		return
	}
	if n.dirty {
		n.refresh()
	}
	steps := 1
	if dt > n.maxStableDt {
		steps = int(math.Ceil(dt / n.maxStableDt))
	}
	h := dt / float64(steps)
	ln := len(n.temps)
	for s := 0; s < steps; s++ {
		t := n.temps
		n.deriv(t, n.k1)
		for i := 0; i < ln; i++ {
			n.tmp[i] = t[i] + 0.5*h*n.k1[i]
		}
		n.deriv(n.tmp, n.k2)
		for i := 0; i < ln; i++ {
			n.tmp[i] = t[i] + 0.5*h*n.k2[i]
		}
		n.deriv(n.tmp, n.k3)
		for i := 0; i < ln; i++ {
			n.tmp[i] = t[i] + h*n.k3[i]
		}
		n.deriv(n.tmp, n.k4)
		for i := 0; i < ln; i++ {
			t[i] += h / 6 * (n.k1[i] + 2*n.k2[i] + 2*n.k3[i] + n.k4[i])
		}
	}
}

// SteadyState solves for the equilibrium temperatures under the current
// power injection and bath configuration without altering the transient
// state. It returns one temperature per node.
func (n *Network) SteadyState() ([]float64, error) {
	ln := len(n.temps)
	if ln == 0 {
		return nil, ErrEmpty
	}
	a := mat.NewDense(ln, ln)
	b := make([]float64, ln)
	for i := 0; i < ln; i++ {
		var diag float64
		for _, e := range n.adj[i] {
			diag += e.g
			a.Set(i, int(e.other), a.At(i, int(e.other))-e.g)
		}
		rhs := n.power[i]
		for _, bt := range n.baths[i] {
			diag += bt.g
			temp := bt.temp
			if bt.useAmbient {
				temp = n.ambient
			}
			rhs += bt.g * temp
		}
		a.Set(i, i, a.At(i, i)+diag)
		b[i] = rhs
	}
	x, err := mat.Solve(a, b)
	if err != nil {
		return nil, fmt.Errorf("thermal: steady state has no unique solution (is every island coupled to a bath?): %w", err)
	}
	return x, nil
}

// Equilibrate sets every node temperature to its steady-state value for the
// current configuration. It is the canonical way to initialise a simulation
// "soaked" at ambient: zero the powers, call Equilibrate, restore powers.
func (n *Network) Equilibrate() error {
	t, err := n.SteadyState()
	if err != nil {
		return err
	}
	copy(n.temps, t)
	return nil
}

// TotalHeatContent returns Σ C_i·T_i in joules relative to 0 °C. Useful for
// energy-balance checks in tests.
func (n *Network) TotalHeatContent() float64 {
	var s float64
	for i, c := range n.caps {
		s += c * n.temps[i]
	}
	return s
}
