package thermal

import (
	"math"
	"testing"
)

// skypePower is a deterministic 900 s Skype-call-like drive: a bursty CPU
// envelope, display power, a mid-call charger window injecting battery
// heat, and board-level aux power. It exists so the differential test
// exercises the same input shape the paper's Fig. 4 workload produces
// without importing the workload package.
func skypePower(t float64) (die, pkg, pcb, battery, screen float64) {
	die = 1.6
	if math.Mod(t, 10) < 6 {
		die = 2.4
	}
	die += 0.3 * math.Sin(t/37)
	pkg = 0.5 + 0.2*math.Sin(t/53)
	pcb = 0.7 // camera + radio
	if t >= 300 && t < 600 {
		battery = 1.1 // charger plugged in for the middle five minutes
	}
	screen = 0.45
	return
}

// TestPropagatorMatchesRK4OnPhone is the differential test demanded by the
// engine change: the exact-propagator path and the RK4 oracle must agree to
// within 0.01 °C on every node over a 900 s Skype-like run on the full
// phone configuration, across touch on/off transitions, an ambient change,
// and charger heat.
func TestPropagatorMatchesRK4OnPhone(t *testing.T) {
	cfg := DefaultPhoneConfig()
	exact, en := NewPhone(cfg)
	oracle, on := NewPhone(cfg)
	oracle.UseRK4(true)

	const dt = 0.05
	var maxDiff float64
	touching := false
	for i := 0; i < 18000; i++ {
		tm := float64(i) * dt
		die, pkg, pcb, bat, scr := skypePower(tm)
		for _, nw := range []*Network{exact, oracle} {
			nodes := en
			if nw == oracle {
				nodes = on
			}
			nw.SetPower(nodes.Die, die)
			nw.SetPower(nodes.Pkg, pkg)
			nw.SetPower(nodes.PCB, pcb)
			nw.SetPower(nodes.Battery, bat)
			nw.SetPower(nodes.Screen, scr)
		}
		// Pick the phone up / put it down every 2 minutes.
		if wantTouch := int(tm/120)%2 == 1; wantTouch != touching {
			touching = wantTouch
			ApplyTouch(exact, en, cfg, touching)
			ApplyTouch(oracle, on, cfg, touching)
		}
		// Walk outside at t = 450 s.
		if i == 9000 {
			exact.SetAmbient(18)
			oracle.SetAmbient(18)
		}
		exact.Step(dt)
		oracle.StepRK4(dt)
		for id := NodeID(0); int(id) < exact.NumNodes(); id++ {
			if d := math.Abs(exact.Temp(id) - oracle.Temp(id)); d > maxDiff {
				maxDiff = d
			}
		}
	}
	if maxDiff > 0.01 {
		t.Fatalf("propagator vs RK4 diverged: max |ΔT| = %.5f °C, want ≤ 0.01", maxDiff)
	}
	if exact.Temp(en.CoverMid) < 30 {
		t.Fatalf("run never left the trivial regime: cover-mid %.1f °C", exact.Temp(en.CoverMid))
	}
}

// TestPropagatorEnergyBalance checks the exact path conserves energy: with
// no baths, the heat content must change by exactly the injected power
// integral (ΣCᵢTᵢ(t) − ΣCᵢTᵢ(0) = P·t), and with zero power it must not
// change at all.
func TestPropagatorEnergyBalance(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("a", 2, 40)
	b := n.AddNode("b", 9, 25)
	c := n.AddNode("c", 18, 25)
	n.Connect(a, b, 3)
	n.Connect(b, c, 5)
	n.Connect(a, c, 7)

	start := n.TotalHeatContent()
	for i := 0; i < 2000; i++ {
		n.Step(0.05)
	}
	if drift := math.Abs(n.TotalHeatContent() - start); drift > 1e-8 {
		t.Fatalf("isolated network drifted %.3e J over 100 s", drift)
	}

	n.SetPower(a, 1.5)
	n.SetPower(c, 0.25)
	start = n.TotalHeatContent()
	const dur = 100.0
	for i := 0; i < 2000; i++ {
		n.Step(0.05)
	}
	want := (1.5 + 0.25) * dur
	if got := n.TotalHeatContent() - start; math.Abs(got-want) > 1e-6*want {
		t.Fatalf("energy balance: gained %.9f J, want %.9f J", got, want)
	}
}

// TestPropagatorReachesSteadyState: the exact path must converge to the
// same equilibrium the direct solver computes.
func TestPropagatorReachesSteadyState(t *testing.T) {
	cfg := DefaultPhoneConfig()
	n, nodes := NewPhone(cfg)
	n.SetPower(nodes.Die, 2.0)
	n.SetPower(nodes.Screen, 0.4)
	ss, err := n.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12000; i++ {
		n.Step(1)
	}
	for id := NodeID(0); int(id) < n.NumNodes(); id++ {
		if d := math.Abs(n.Temp(id) - ss[id]); d > 1e-6 {
			t.Fatalf("node %s: transient %.8f vs steady state %.8f", n.Name(id), n.Temp(id), ss[id])
		}
	}
}

// TestApplyTouchReusesCachedPropagators: flipping touch must settle on two
// cached propagators, not rebuild one per transition.
func TestApplyTouchReusesCachedPropagators(t *testing.T) {
	cfg := DefaultPhoneConfig()
	n, nodes := NewPhone(cfg)
	for flip := 0; flip < 50; flip++ {
		ApplyTouch(n, nodes, cfg, flip%2 == 0)
		for i := 0; i < 10; i++ {
			n.Step(0.05)
		}
	}
	if got := len(n.props); got != 2 {
		t.Fatalf("propagator cache holds %d entries after touch flips, want 2", got)
	}
}

// TestStepMatchesStepRK4Defaults: small sanity check that UseRK4 actually
// switches engines and both advance the state.
func TestStepMatchesStepRK4Defaults(t *testing.T) {
	n := NewNetwork(25)
	a := n.AddNode("a", 5, 60)
	n.ConnectAmbient(a, 10)
	n.Step(5)
	cooledExact := n.Temp(a)
	if cooledExact >= 60 {
		t.Fatal("propagator did not cool the node")
	}
	m := NewNetwork(25)
	b := m.AddNode("a", 5, 60)
	m.ConnectAmbient(b, 10)
	m.UseRK4(true)
	m.Step(5)
	// RK4 carries O((h/τ)⁵) truncation error; the propagator is exact.
	if math.Abs(m.Temp(b)-cooledExact) > 1e-4 {
		t.Fatalf("engines disagree: exact %.8f vs RK4 %.8f", cooledExact, m.Temp(b))
	}
}
