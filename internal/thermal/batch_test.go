package thermal

import (
	"math"
	"testing"
)

// clonePhone builds n identical phone networks with distinct power/ambient
// programs applied by the caller.
func phones(n int) ([]*Network, []PhoneNodes) {
	cfg := DefaultPhoneConfig()
	nets := make([]*Network, n)
	nodes := make([]PhoneNodes, n)
	for i := range nets {
		nets[i], nodes[i] = NewPhone(cfg)
	}
	return nets, nodes
}

// driveSolo replays the same (power, touch, ambient) program on a fresh
// network via per-network Step, returning the final temperatures — the
// reference the lockstep run must match bit for bit.
func driveSolo(t *testing.T, steps int, program func(tick, i int, net *Network, nd PhoneNodes), count int, dt float64) [][]float64 {
	t.Helper()
	nets, nodes := phones(count)
	for s := 0; s < steps; s++ {
		for i, net := range nets {
			program(s, i, net, nodes[i])
			net.Step(dt)
		}
	}
	out := make([][]float64, count)
	for i, net := range nets {
		out[i] = net.Temps(nil)
	}
	return out
}

// driveLockstep replays the identical program through a Lockstep.
func driveLockstep(t *testing.T, steps int, program func(tick, i int, net *Network, nd PhoneNodes), count int, dt float64) [][]float64 {
	t.Helper()
	nets, nodes := phones(count)
	ls, err := NewLockstep(nets)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		for i, net := range nets {
			program(s, i, net, nodes[i])
		}
		ls.Step(dt)
	}
	ls.Close()
	out := make([][]float64, count)
	for i, net := range nets {
		out[i] = net.Temps(nil)
	}
	return out
}

func requireBitEqual(t *testing.T, label string, got, want [][]float64) {
	t.Helper()
	for i := range want {
		for j := range want[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("%s: network %d node %d = %v (%x), solo %v (%x)", label, i, j,
					got[i][j], math.Float64bits(got[i][j]),
					want[i][j], math.Float64bits(want[i][j]))
			}
		}
	}
}

// TestLockstepBitIdenticalToSolo drives cohorts of several sizes (1 hits
// the kernel's scalar tail, odd sizes hit pair + tail) through a program
// with per-network power schedules and per-network ambients, and requires
// final states bit-equal to per-network stepping.
func TestLockstepBitIdenticalToSolo(t *testing.T) {
	const dt = 0.05
	for _, count := range []int{1, 2, 5, 8} {
		program := func(tick, i int, net *Network, nd PhoneNodes) {
			if tick == 0 {
				net.SetAmbient(20 + float64(i))
			}
			net.SetPower(nd.Die, 1.5+0.5*float64(i)+0.1*float64(tick%7))
			net.SetPower(nd.Screen, 0.4)
		}
		want := driveSolo(t, 201, program, count, dt)
		got := driveLockstep(t, 201, program, count, dt)
		requireBitEqual(t, "steady cohort", got, want)
	}
}

// TestLockstepRegroupsOnTouchFlips flips hand contact on different
// networks at different ticks — the live-signature divergence that splits
// a cohort into sub-cohorts — and requires bit-equality throughout.
func TestLockstepRegroupsOnTouchFlips(t *testing.T) {
	const dt = 0.05
	cfg := DefaultPhoneConfig()
	program := func(tick, i int, net *Network, nd PhoneNodes) {
		net.SetPower(nd.Die, 2.5)
		// Network i toggles touch every 40+10*i ticks, desynchronizing the
		// cohort's signatures.
		period := 40 + 10*i
		touching := (tick/period)%2 == 1
		ApplyTouch(net, nd, cfg, touching)
	}
	want := driveSolo(t, 301, program, 4, dt)
	got := driveLockstep(t, 301, program, 4, dt)
	requireBitEqual(t, "touch flips", got, want)
}

// TestLockstepResetBitIdentical reuses one Lockstep across three
// successive cohorts via Reset — including a smaller cohort that leaves
// spare columns — and requires every cohort's trajectory bit-equal to
// solo stepping. This is the contract the fleet's wave-over-wave
// lockstep pooling depends on.
func TestLockstepResetBitIdentical(t *testing.T) {
	const dt, steps = 0.05, 151
	program := func(tick, i int, net *Network, nd PhoneNodes) {
		if tick == 0 {
			net.SetAmbient(22 + 3*float64(i))
		}
		net.SetPower(nd.Die, 1.0+0.7*float64(i)+0.05*float64(tick%11))
	}

	var ls *Lockstep
	for round, count := range []int{4, 4, 2} {
		nets, nodes := phones(count)
		if ls == nil {
			var err error
			if ls, err = NewLockstep(nets); err != nil {
				t.Fatal(err)
			}
		} else if err := ls.Reset(nets); err != nil {
			t.Fatalf("round %d: reset: %v", round, err)
		}
		for s := 0; s < steps; s++ {
			for i, net := range nets {
				program(s, i, net, nodes[i])
			}
			ls.Step(dt)
		}
		ls.Close()
		got := make([][]float64, count)
		for i, net := range nets {
			got[i] = net.Temps(nil)
		}
		want := driveSolo(t, steps, program, count, dt)
		requireBitEqual(t, "reset round", got, want)
	}

	// A cohort that doesn't fit the block is refused without corrupting
	// the receiver: too many columns, then a different node count.
	wide, _ := phones(5)
	if err := ls.Reset(wide); err == nil {
		t.Fatal("reset accepted a cohort wider than the block")
	}
	odd := NewNetwork(25)
	odd.AddNode("a", 1, 25)
	odd.AddNode("b", 1, 25)
	if err := ls.Reset([]*Network{odd}); err == nil {
		t.Fatal("reset accepted a mismatched node count")
	}
	small, nodes := phones(1)
	if err := ls.Reset(small); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		program(s, 0, small[0], nodes[0])
		ls.Step(dt)
	}
	ls.Close()
	want := driveSolo(t, steps, program, 1, dt)
	requireBitEqual(t, "post-refusal reuse", [][]float64{small[0].Temps(nil)}, want)
}

// TestLockstepRK4FallbackMixed enrolls a forced-RK4 network alongside
// propagator-driven ones: the fallback must integrate its own column while
// the rest advance batched, and every network must match its solo run.
func TestLockstepRK4FallbackMixed(t *testing.T) {
	const dt = 0.05
	program := func(tick, i int, net *Network, nd PhoneNodes) {
		if tick == 0 && i == 1 {
			net.UseRK4(true)
		}
		net.SetPower(nd.Die, 2.0)
	}
	want := driveSolo(t, 121, program, 3, dt)
	got := driveLockstep(t, 121, program, 3, dt)
	requireBitEqual(t, "rk4 mixed", got, want)
}

// TestGatherScatterRoundTrip pins the borrow protocol: state survives a
// gather → step → scatter round trip, and a scattered network owns storage
// independent of the block.
func TestGatherScatterRoundTrip(t *testing.T) {
	nets, nodes := phones(2)
	nets[0].SetPower(nodes[0].Die, 3)
	nets[1].SetPower(nodes[1].Die, 1)
	before0 := nets[0].Temps(nil)
	blk := NewStateBlock(nets[0].NumNodes(), 2)
	nets[0].Gather(blk, 0)
	nets[1].Gather(blk, 1)
	if got := nets[0].Temps(nil); math.Float64bits(got[0]) != math.Float64bits(before0[0]) {
		t.Fatalf("gather changed state: %v vs %v", got[0], before0[0])
	}
	nets[0].Step(0.05)
	nets[1].Step(0.05)
	afterStep := nets[0].Temps(nil)
	nets[0].Scatter()
	nets[1].Scatter()
	if got := nets[0].Temps(nil); math.Float64bits(got[int(nodes[0].Die)]) != math.Float64bits(afterStep[int(nodes[0].Die)]) {
		t.Fatal("scatter lost the stepped state")
	}
	// Mutating the block after scatter must not touch the network.
	for i := range blk.temps {
		blk.temps[i] = -1000
	}
	if nets[0].Temp(nodes[0].Die) == -1000 {
		t.Fatal("scattered network still aliases the block")
	}
	// Double scatter is a no-op.
	nets[0].Scatter()
}

// TestNewLockstepRejectsMismatchedNetworks pins the shape guard.
func TestNewLockstepRejectsMismatchedNetworks(t *testing.T) {
	a, _ := NewPhone(DefaultPhoneConfig())
	b := NewNetwork(25)
	b.AddNode("solo", 1, 25)
	if _, err := NewLockstep([]*Network{a, b}); err == nil {
		t.Fatal("mismatched node counts were accepted")
	}
	if _, err := NewLockstep(nil); err == nil {
		t.Fatal("empty lockstep was accepted")
	}
}

// TestPropLRUGetOrBuild pins the single-critical-section cache API: one
// build per key, hits counted, nil builds not cached.
func TestPropLRUGetOrBuild(t *testing.T) {
	c := newPropLRU(4)
	key := propKey{sig: 99, dt: 0.05}
	builds := 0
	build := func() *propagator { builds++; return &propagator{sig: 99, dt: 0.05} }
	p1 := c.getOrBuild(key, build)
	p2 := c.getOrBuild(key, build)
	if p1 == nil || p1 != p2 {
		t.Fatalf("getOrBuild returned distinct propagators: %p %p", p1, p2)
	}
	if builds != 1 {
		t.Fatalf("build ran %d times, want 1", builds)
	}
	hits, misses := c.stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// nil builds (degenerate configurations) are not cached: every lookup
	// re-misses so the caller can keep falling back to RK4.
	nilKey := propKey{sig: 100, dt: 0.05}
	nilBuilds := 0
	for i := 0; i < 2; i++ {
		if p := c.getOrBuild(nilKey, func() *propagator { nilBuilds++; return nil }); p != nil {
			t.Fatal("nil build produced a cached propagator")
		}
	}
	if nilBuilds != 2 {
		t.Fatalf("nil build ran %d times, want 2 (never cached)", nilBuilds)
	}
}

// TestPropagatorForHitsSharedCacheOnce pins the fleet-relevant behaviour:
// two networks with identical configurations share one matrix-exponential
// build — the second network's local-cache miss is a shared-cache hit.
func TestPropagatorForHitsSharedCacheOnce(t *testing.T) {
	cfg := DefaultPhoneConfig()
	// A distinctive dt keeps this test's key out of other tests' way.
	const dt = 0.05 + 1e-9
	h0, m0 := sharedProps.stats()
	a, _ := NewPhone(cfg)
	b, _ := NewPhone(cfg)
	a.Step(dt)
	b.Step(dt)
	h1, m1 := sharedProps.stats()
	if m1-m0 != 1 {
		t.Fatalf("shared cache misses = %d, want exactly 1 build for two identical networks", m1-m0)
	}
	if h1-h0 != 1 {
		t.Fatalf("shared cache hits = %d, want exactly 1 (second network reuses the build)", h1-h0)
	}
	// Subsequent steps are served by the per-network MRU: no new shared
	// traffic at all.
	a.Step(dt)
	b.Step(dt)
	h2, m2 := sharedProps.stats()
	if h2 != h1 || m2 != m1 {
		t.Fatalf("per-network MRU bypass failed: shared stats moved %d/%d → %d/%d", h1, m1, h2, m2)
	}
}
