package thermal

import (
	"math"
	"strings"
	"testing"
)

func TestSolveSurfaceValidation(t *testing.T) {
	good := SurfaceConfig{W: 8, H: 8, KLat: 0.1, GAmb: 0.01, Ambient: 25}
	if _, err := SolveSurface(SurfaceConfig{W: 1, H: 8, KLat: 0.1, GAmb: 0.01}, nil); err == nil {
		t.Fatal("1-wide grid accepted")
	}
	bad := good
	bad.KLat = 0
	if _, err := SolveSurface(bad, nil); err == nil {
		t.Fatal("zero lateral conductance accepted")
	}
	if _, err := SolveSurface(good, []HeatSource{{X: 7, Y: 7, W: 2, H: 1, Watts: 1}}); err == nil {
		t.Fatal("out-of-grid source accepted")
	}
	if _, err := SolveSurface(good, []HeatSource{{X: 0, Y: 0, W: 0, H: 1, Watts: 1}}); err == nil {
		t.Fatal("zero-extent source accepted")
	}
}

func TestSurfaceNoSourcesIsAmbient(t *testing.T) {
	cfg := SurfaceConfig{W: 8, H: 10, KLat: 0.1, GAmb: 0.01, Ambient: 23}
	m, err := SolveSurface(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range m.T {
		if math.Abs(v-23) > 1e-6 {
			t.Fatalf("cell %d = %v want ambient", i, v)
		}
	}
}

func TestSurfaceEnergyBalance(t *testing.T) {
	// In steady state, total power in equals total convected out:
	// Σ GAmb·(T_c − Tamb) = Σ sources.
	cfg := SurfaceConfig{W: 12, H: 20, KLat: 0.15, GAmb: 0.002, Ambient: 25}
	srcs := []HeatSource{{X: 4, Y: 8, W: 4, H: 4, Watts: 2.5}, {X: 1, Y: 1, W: 2, H: 2, Watts: 0.5}}
	m, err := SolveSurface(cfg, srcs)
	if err != nil {
		t.Fatal(err)
	}
	var out float64
	for _, v := range m.T {
		out += cfg.GAmb * (v - cfg.Ambient)
	}
	if math.Abs(out-3.0) > 0.01 {
		t.Fatalf("energy balance: %.4f W out vs 3.0 W in", out)
	}
}

func TestSurfaceHottestAtSource(t *testing.T) {
	cfg := SurfaceConfig{W: 15, H: 15, KLat: 0.1, GAmb: 0.003, Ambient: 25}
	m, err := SolveSurface(cfg, []HeatSource{{X: 7, Y: 7, W: 1, H: 1, Watts: 1.5}})
	if err != nil {
		t.Fatal(err)
	}
	_, x, y := m.Max()
	if x != 7 || y != 7 {
		t.Fatalf("hot spot at (%d,%d) want (7,7)", x, y)
	}
	// Temperature decays monotonically along the axis away from the source.
	prev := m.At(7, 7)
	for d := 1; d <= 7; d++ {
		v := m.At(7+d%8, 7) // move right
		v = m.At(7, 7-d)    // move up
		if v >= prev {
			t.Fatalf("no decay at distance %d: %v >= %v", d, v, prev)
		}
		prev = v
	}
}

func TestSurfaceSymmetry(t *testing.T) {
	// A centered source on a symmetric grid yields a symmetric field.
	cfg := SurfaceConfig{W: 11, H: 11, KLat: 0.1, GAmb: 0.004, Ambient: 25}
	m, err := SolveSurface(cfg, []HeatSource{{X: 5, Y: 5, W: 1, H: 1, Watts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < 11; y++ {
		for x := 0; x < 11; x++ {
			if math.Abs(m.At(x, y)-m.At(10-x, y)) > 1e-6 {
				t.Fatalf("x-asymmetry at (%d,%d)", x, y)
			}
			if math.Abs(m.At(x, y)-m.At(x, 10-y)) > 1e-6 {
				t.Fatalf("y-asymmetry at (%d,%d)", x, y)
			}
		}
	}
}

func TestPhoneCoverMapMidsectionHottest(t *testing.T) {
	// Under a Skype-like dissipation split the hottest band sits over the
	// battery/midsection — the paper's skin-temperature measurement point —
	// and the map's mean rise is in the same class as the lumped model's
	// cover temperature.
	cfg := PhoneCoverConfig(25)
	m, err := SolveSurface(cfg, PhoneCoverSources(cfg, 2.0, 0.4, 0.6))
	if err != nil {
		t.Fatal(err)
	}
	_, _, y := m.Max()
	if y < cfg.H/6 {
		t.Fatalf("hot spot at row %d, implausibly near the top edge", y)
	}
	mid := m.At(cfg.W/2, cfg.H/2)
	bottom := m.At(cfg.W/2, cfg.H-1)
	if mid <= bottom {
		t.Fatalf("midsection (%.1f) should exceed the bottom edge (%.1f)", mid, bottom)
	}
	if mean := m.Mean(); mean < 30 || mean > 50 {
		t.Fatalf("mean cover temperature %.1f outside the plausible band", mean)
	}
}

func TestSurfaceRender(t *testing.T) {
	cfg := SurfaceConfig{W: 6, H: 4, KLat: 0.1, GAmb: 0.01, Ambient: 25}
	m, err := SolveSurface(cfg, []HeatSource{{X: 2, Y: 1, W: 2, H: 2, Watts: 1}})
	if err != nil {
		t.Fatal(err)
	}
	out := m.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // header + 4 rows
		t.Fatalf("render lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "°C") {
		t.Fatalf("header missing range: %q", lines[0])
	}
	if !strings.Contains(out, "@") {
		t.Fatal("render missing the hottest ramp character")
	}
}

func TestSurfaceMeanAndMax(t *testing.T) {
	m := &SurfaceMap{W: 2, H: 2, T: []float64{1, 2, 3, 4}}
	if m.Mean() != 2.5 {
		t.Fatalf("Mean = %v", m.Mean())
	}
	v, x, y := m.Max()
	if v != 4 || x != 1 || y != 1 {
		t.Fatalf("Max = %v at (%d,%d)", v, x, y)
	}
}
