package thermal

// System identification: estimate a thermal network's conductances from a
// logged trace of node temperatures and injected powers. This is the
// calibration path for porting the model to a new handset — run a few
// power-stepped workloads with thermistors attached, then fit.
//
// The RC dynamics are linear in the conductances: for node i at sample k,
//
//	C_i·(T_i[k+1] − T_i[k])/dt − P_i[k] = Σ_e g_e·(T_other[k] − T_i[k])
//
// so, with known capacitances, all edge conductances solve one ordinary
// least-squares problem over every (node, sample) pair.

import (
	"fmt"

	"repro/internal/mat"
)

// SysIDEdge names one unknown coupling: nodes A–B, or A–ambient when
// B == AmbientNode.
type SysIDEdge struct {
	A, B int
}

// AmbientNode marks the ambient side of an edge in SysIDEdge.
const AmbientNode = -1

// SysIDTrace is the logged input for identification.
type SysIDTrace struct {
	// DtSec is the (uniform) sampling interval.
	DtSec float64
	// Temps[k][i] is node i's temperature at sample k (°C).
	Temps [][]float64
	// Powers[k][i] is node i's injected power at sample k (W).
	Powers [][]float64
	// Ambient is the ambient temperature (°C), assumed constant.
	Ambient float64
}

// FitConductances estimates the conductance (W/K) of every edge from the
// trace, given the node capacitances (J/K). It returns one conductance per
// edge, in order. The trace must contain at least two samples and enough
// thermal excitation to make the problem well posed; a rank-deficient fit
// falls back to ridge regularization (see mat.LeastSquares).
func FitConductances(tr SysIDTrace, capsJK []float64, edges []SysIDEdge) ([]float64, error) {
	n := len(capsJK)
	if n == 0 {
		return nil, fmt.Errorf("thermal: sysid needs at least one node")
	}
	if len(tr.Temps) < 2 {
		return nil, fmt.Errorf("thermal: sysid needs at least two samples, got %d", len(tr.Temps))
	}
	if tr.DtSec <= 0 {
		return nil, fmt.Errorf("thermal: sysid needs a positive sampling interval")
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("thermal: sysid needs at least one edge")
	}
	for _, e := range edges {
		if e.A < 0 || e.A >= n || (e.B != AmbientNode && (e.B < 0 || e.B >= n)) || e.A == e.B {
			return nil, fmt.Errorf("thermal: sysid edge %+v out of range for %d nodes", e, n)
		}
	}
	samples := len(tr.Temps) - 1
	rows := samples * n
	a := mat.NewDense(rows, len(edges))
	y := make([]float64, rows)
	for k := 0; k < samples; k++ {
		if len(tr.Temps[k]) != n || len(tr.Powers[k]) != n {
			return nil, fmt.Errorf("thermal: sysid sample %d has wrong width", k)
		}
		for i := 0; i < n; i++ {
			row := k*n + i
			dTdt := (tr.Temps[k+1][i] - tr.Temps[k][i]) / tr.DtSec
			y[row] = capsJK[i]*dTdt - tr.Powers[k][i]
			for ei, e := range edges {
				var coeff float64
				switch {
				case e.A == i && e.B == AmbientNode:
					coeff = tr.Ambient - tr.Temps[k][i]
				case e.A == i:
					coeff = tr.Temps[k][e.B] - tr.Temps[k][i]
				case e.B == i:
					coeff = tr.Temps[k][e.A] - tr.Temps[k][i]
				}
				a.Set(row, ei, coeff)
			}
		}
	}
	g, err := mat.LeastSquares(a, y, 0)
	if err != nil {
		return nil, fmt.Errorf("thermal: sysid solve: %w", err)
	}
	return g, nil
}

// CollectSysIDTrace runs the network forward under a power schedule and
// records the trace at the given sampling interval — the simulation-side
// analogue of a thermistor logging session. schedule(k) returns the power
// vector applied during sample k.
func CollectSysIDTrace(n *Network, dtSec float64, samples int, ambient float64,
	schedule func(k int) []float64) SysIDTrace {
	tr := SysIDTrace{DtSec: dtSec, Ambient: ambient}
	for k := 0; k < samples; k++ {
		p := schedule(k)
		for i := 0; i < n.NumNodes(); i++ {
			n.SetPower(NodeID(i), p[i])
		}
		tr.Temps = append(tr.Temps, n.Temps(nil))
		tr.Powers = append(tr.Powers, append([]float64(nil), p...))
		n.Step(dtSec)
	}
	tr.Temps = append(tr.Temps, n.Temps(nil))
	return tr
}
