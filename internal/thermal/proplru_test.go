package thermal

import "testing"

// TestPropLRUBoundAndEviction unit-tests the shared-cache LRU: the bound
// holds, eviction is least-recently-used, and recency refreshes on get.
func TestPropLRUBoundAndEviction(t *testing.T) {
	c := newPropLRU(3)
	mk := func(sig uint64) (propKey, *propagator) {
		return propKey{sig: sig, dt: 0.05}, &propagator{sig: sig, dt: 0.05}
	}
	keys := make([]propKey, 5)
	props := make([]*propagator, 5)
	for i := range keys {
		keys[i], props[i] = mk(uint64(i))
	}
	c.put(keys[0], props[0])
	c.put(keys[1], props[1])
	c.put(keys[2], props[2])
	if c.len() != 3 {
		t.Fatalf("len = %d want 3", c.len())
	}
	// Touch 0 so 1 becomes the LRU, then overflow.
	if c.get(keys[0]) != props[0] {
		t.Fatal("get missed a cached entry")
	}
	c.put(keys[3], props[3])
	if c.len() != 3 {
		t.Fatalf("len = %d want 3 after eviction", c.len())
	}
	if c.get(keys[1]) != nil {
		t.Fatal("LRU entry 1 should have been evicted")
	}
	for _, i := range []int{0, 2, 3} {
		if c.get(keys[i]) != props[i] {
			t.Fatalf("entry %d lost", i)
		}
	}
	// Re-put of an existing key refreshes, never grows.
	c.put(keys[3], props[3])
	if c.len() != 3 {
		t.Fatalf("len = %d want 3 after refresh", c.len())
	}
	// The verification loop touched 0, 2, 3 in that order, so 0 is now the
	// LRU and the next overflow must evict it.
	c.put(keys[4], props[4])
	if c.get(keys[0]) != nil {
		t.Fatal("entry 0 should have been evicted as the LRU")
	}
	for _, i := range []int{2, 3, 4} {
		if c.get(keys[i]) != props[i] {
			t.Fatalf("entry %d lost after eviction", i)
		}
	}
}

// TestSharedPropagatorCacheStaysBounded sweeps a network through far more
// (configuration, dt) pairs than the cap and checks the process-wide cache
// never exceeds it — the leak a many-device scenario sweep would otherwise
// hit — while the network keeps integrating correctly.
func TestSharedPropagatorCacheStaysBounded(t *testing.T) {
	cfg := DefaultPhoneConfig()
	for i := 0; i < maxSharedPropagators+64; i++ {
		net, nodes := NewPhone(cfg)
		net.SetPower(nodes.Die, 2.0)
		// A distinct dt per iteration forces a fresh cache entry.
		dt := 0.05 + float64(i)*1e-6
		before := net.Temp(nodes.Die)
		for s := 0; s < 3; s++ {
			net.Step(dt)
		}
		if !(net.Temp(nodes.Die) > before) {
			t.Fatalf("iteration %d: die did not heat under power", i)
		}
	}
	if n := sharedProps.len(); n > maxSharedPropagators {
		t.Fatalf("shared cache grew to %d entries, cap is %d", n, maxSharedPropagators)
	}
}
