package repro_test

import (
	"testing"

	"repro"
)

// The facade tests are smoke-level: the underlying behaviour is covered in
// depth by the internal package suites; here we verify the public surface
// wires everything together.

func TestFacadeBenchmarksExposed(t *testing.T) {
	bs := repro.Benchmarks(1)
	if len(bs) != 13 {
		t.Fatalf("Benchmarks = %d workloads, want 13", len(bs))
	}
	names := repro.BenchmarkNames()
	if len(names) != 13 {
		t.Fatalf("BenchmarkNames = %d, want 13", len(names))
	}
	for i, w := range bs {
		if w.Name() != names[i] {
			t.Fatalf("name mismatch at %d: %q vs %q", i, w.Name(), names[i])
		}
	}
	if repro.WorkloadByName("skype", 1) == nil {
		t.Fatal("WorkloadByName(skype) = nil")
	}
	if repro.WorkloadByName("nope", 1) != nil {
		t.Fatal("WorkloadByName(nope) should be nil")
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	cfg := repro.DefaultDeviceConfig()
	loads := []repro.Workload{
		repro.WorkloadByName("skype", 2),
		repro.StaircaseRamp(3, 0.1, 0.9, 6, 40),
		repro.Idle(180),
	}
	corpus := repro.CollectCorpus(cfg, loads, 0)
	if len(corpus) < 1000 {
		t.Fatalf("corpus = %d records", len(corpus))
	}
	pred, err := repro.TrainPredictor(corpus)
	if err != nil {
		t.Fatal(err)
	}

	phone := repro.NewPhone(cfg)
	phone.SetController(repro.NewUSTA(pred, repro.DefaultLimitC))
	res := phone.Run(repro.WorkloadByName("skype", 4), 600)
	if res.MaxSkinC < 26 || res.MaxSkinC > 45 {
		t.Fatalf("implausible peak skin %.1f", res.MaxSkinC)
	}
	if res.Ctrl == "" {
		t.Fatal("controller name missing from result")
	}
}

func TestFacadeRegressorConstructors(t *testing.T) {
	for _, r := range []repro.Regressor{
		repro.NewREPTreeRegressor(1),
		repro.NewM5PRegressor(),
		repro.NewLinearRegressor(),
		repro.NewMLPRegressor(1),
	} {
		if r.Name() == "" {
			t.Fatal("regressor without a name")
		}
	}
}

func TestFacadePolicies(t *testing.T) {
	if repro.LadderPolicy(3, 11) != 11 {
		t.Fatal("LadderPolicy broken through facade")
	}
	if repro.HardPolicy(1, 11) != 0 {
		t.Fatal("HardPolicy broken through facade")
	}
	if repro.ProportionalPolicy(1, 11) == 0 {
		t.Fatal("ProportionalPolicy broken through facade")
	}
	if repro.MarginLadder(4)(3, 11) == 11 {
		t.Fatal("MarginLadder broken through facade")
	}
}

func TestFacadeStudyPopulation(t *testing.T) {
	pop := repro.StudyPopulation()
	if len(pop) != 10 {
		t.Fatalf("population = %d want 10", len(pop))
	}
	if repro.DefaultLimitC != 37.0 {
		t.Fatalf("DefaultLimitC = %v", repro.DefaultLimitC)
	}
}

func TestFacadeSyntheticWorkloads(t *testing.T) {
	if w := repro.SquareWave(1, 10, 0.5, 0.9, 0.1, 60); w.Duration() != 60 {
		t.Fatal("SquareWave broken")
	}
	if w := repro.RandomPhases(1, 5, 30); w.Duration() != 150 {
		t.Fatal("RandomPhases broken")
	}
}
