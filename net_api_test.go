package repro_test

import (
	"context"
	"io"
	stdnet "net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	fleetnet "repro/internal/fleet/net"
	"repro/internal/fleet/wire"
)

// startNetDaemon runs an in-process worker daemon (the TCP equivalent of
// `ustaworker -listen`) and returns its address.
func startNetDaemon(t *testing.T, capacity int) string {
	t.Helper()
	srv := &fleetnet.Server{Capacity: capacity}
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(context.Background(), ln)
	t.Cleanup(srv.Shutdown)
	return ln.Addr().String()
}

// TestNetRunnerMatchesLocalTable1 is the networked fleet's acceptance
// test: the paper's Table 1 scenario dispatched to two live TCP worker
// daemons — non-batched and cohort-batched — must produce byte-identical
// analytics cells and telemetry to the in-process LocalRunner.
func TestNetRunnerMatchesLocalTable1(t *testing.T) {
	spec, err := repro.LoadScenario(table1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	pred := scenarioPipeline().Predictor()

	type cell struct {
		name                string
		seed                int64
		maxSkinC, maxScrC   float64
		avgFreqMHz, energyJ float64
		workDone, slowdown  float64
	}
	run := func(label string, opts ...repro.ScenarioOption) ([]cell, *countingSink) {
		t.Helper()
		cs := newCountingSink()
		res, err := repro.RunScenario(context.Background(), spec,
			append([]repro.ScenarioOption{repro.ScenarioPredictor(pred), repro.ScenarioSink(cs)}, opts...)...)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if err := res.FirstError(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cells := make([]cell, len(res.Results))
		for i, jr := range res.Results {
			r := jr.Result
			cells[i] = cell{
				name: jr.Name, seed: jr.SeedUsed,
				maxSkinC: r.MaxSkinC, maxScrC: r.MaxScreenC,
				avgFreqMHz: r.AvgFreqMHz, energyJ: r.EnergyJ,
				workDone: r.WorkDone, slowdown: r.Slowdown(),
			}
		}
		return cells, cs
	}
	requireEqual := func(label string, got, ref []cell, gotSink, refSink *countingSink) {
		t.Helper()
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: cell %d diverged from local:\ngot  %+v\nwant %+v", label, i, got[i], ref[i])
			}
			if gotSink.counts[i] != refSink.counts[i] || gotSink.sums[i] != refSink.sums[i] {
				t.Fatalf("%s: job %d telemetry diverged: %d samples / sum %v, local %d / %v",
					label, i, gotSink.counts[i], gotSink.sums[i], refSink.counts[i], refSink.sums[i])
			}
			if refSink.counts[i] == 0 {
				t.Fatalf("job %d delivered no samples", i)
			}
		}
	}

	hosts := []string{startNetDaemon(t, 2), startNetDaemon(t, 2)}
	ref, refSink := run("local workers=1", repro.ScenarioWorkers(1))

	got, gotSink := run("net 2 daemons", repro.ScenarioRunner(repro.NewNetRunner(hosts)))
	requireEqual("net 2 daemons", got, ref, gotSink, refSink)

	// WithBatchedRunner (like an injected predictor) makes RunScenario
	// execute on a modified copy of the caller's runner; the caller's
	// Stats must still observe that run (ustasim -stats-json depends on
	// this — regression: the copy used to swallow the tracker).
	nr := repro.NewNetRunner(hosts)
	got, gotSink = run("net 2 daemons batched",
		repro.ScenarioRunner(nr), repro.WithBatchedRunner())
	requireEqual("net 2 daemons batched", got, ref, gotSink, refSink)
	st := nr.Stats()
	if len(st.Hosts) != len(hosts) {
		t.Fatalf("caller runner stats: %d hosts, want %d (run executed on a copy without publishing back)", len(st.Hosts), len(hosts))
	}
	var items int
	for _, h := range st.Hosts {
		items += h.ItemsCompleted
	}
	if items == 0 {
		t.Fatal("caller runner stats: zero items completed after a successful networked run")
	}
}

// TestNetRunnerRetryMatchesLocalTable1 kills a worker daemon's connection
// mid-shard — after exactly one result frame — and requires the retried
// sweep to stay byte-identical to the in-process runner: lost jobs rerun
// on the surviving daemon with position-derived seeds, and the dead
// shard's partially-streamed telemetry is delivered exactly once.
func TestNetRunnerRetryMatchesLocalTable1(t *testing.T) {
	spec, err := repro.LoadScenario(table1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	pred := scenarioPipeline().Predictor()

	run := func(label string, opts ...repro.ScenarioOption) ([]repro.JobResult, *countingSink) {
		t.Helper()
		cs := newCountingSink()
		res, err := repro.RunScenario(context.Background(), spec,
			append([]repro.ScenarioOption{repro.ScenarioPredictor(pred), repro.ScenarioSink(cs)}, opts...)...)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if err := res.FirstError(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return res.Results, cs
	}
	ref, refSink := run("local workers=1", repro.ScenarioWorkers(1))

	// The doomed daemon sits behind a connection-killing proxy; the healthy
	// one behind a slow-start proxy, so the doomed host claims the first
	// shard before the healthy host's handshake lands.
	doomed := startNetDaemon(t, 1)
	killer := startFrameKillingProxy(t, doomed, 1)
	healthy := startSlowStartProxy(t, startNetDaemon(t, 1), 600*time.Millisecond)

	var logs strings.Builder
	var logMu sync.Mutex
	runner := repro.NewNetRunner([]string{killer, healthy})
	runner.ShardSize = 4
	runner.Logf = func(format string, args ...any) {
		logMu.Lock()
		defer logMu.Unlock()
		logs.WriteString(format)
		logs.WriteByte('\n')
	}

	got, gotSink := run("net kill+retry", repro.ScenarioRunner(runner))
	logMu.Lock()
	captured := logs.String()
	logMu.Unlock()
	if !strings.Contains(captured, "requeueing") {
		t.Fatalf("worker kill did not trigger a retry; coordinator log:\n%s", captured)
	}
	for i := range ref {
		if got[i].Err != nil {
			t.Fatalf("job %d failed after retry: %v", i, got[i].Err)
		}
		if got[i].SeedUsed != ref[i].SeedUsed || got[i].Name != ref[i].Name ||
			got[i].Result.MaxSkinC != ref[i].Result.MaxSkinC ||
			got[i].Result.EnergyJ != ref[i].Result.EnergyJ ||
			got[i].Result.AvgFreqMHz != ref[i].Result.AvgFreqMHz {
			t.Fatalf("job %d diverged from local after kill+retry:\ngot  %+v\nwant %+v",
				i, got[i], ref[i])
		}
		if gotSink.counts[i] != refSink.counts[i] || gotSink.sums[i] != refSink.sums[i] {
			t.Fatalf("job %d telemetry diverged after kill+retry: %d samples / sum %v, local %d / %v",
				i, gotSink.counts[i], gotSink.sums[i], refSink.counts[i], refSink.sums[i])
		}
	}
}

// startFrameKillingProxy fronts a worker daemon and cuts the first
// connection after forwarding resultsUntil result frames — a worker
// process dying mid-shard, as seen from the coordinator. Later
// connections relay untouched.
func startFrameKillingProxy(t *testing.T, backend string, resultsUntil int) string {
	t.Helper()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			client, err := ln.Accept()
			if err != nil {
				return
			}
			kill := false
			once.Do(func() { kill = true })
			wg.Add(1)
			go func(client stdnet.Conn, kill bool) {
				defer wg.Done()
				defer client.Close()
				server, err := stdnet.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer server.Close()
				go func() {
					io.Copy(server, client)
					server.Close()
				}()
				if !kill {
					io.Copy(client, server)
					return
				}
				results := 0
				for {
					f, err := wire.ReadFrame(server)
					if err != nil {
						return
					}
					if err := wire.WriteFrame(client, f); err != nil {
						return
					}
					if f.Type == wire.TypeResult {
						results++
						if results >= resultsUntil {
							return // defers cut both sides: the "kill"
						}
					}
				}
			}(client, kill)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

// startSlowStartProxy fronts a backend with a fixed pre-handshake delay,
// keeping that host out of the early dispatch race so the test controls
// which host claims the first shard.
func startSlowStartProxy(t *testing.T, backend string, delay time.Duration) string {
	t.Helper()
	ln, err := stdnet.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			client, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(client stdnet.Conn) {
				defer wg.Done()
				defer client.Close()
				time.Sleep(delay)
				server, err := stdnet.Dial("tcp", backend)
				if err != nil {
					return
				}
				defer server.Close()
				go func() {
					io.Copy(server, client)
					server.Close()
				}()
				io.Copy(client, server)
			}(client)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}
