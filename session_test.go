package repro_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro"
)

// TestSessionOptionValidation: every invalid configuration must surface as
// an error from NewSession — never a panic, never a silently-wrong phone.
func TestSessionOptionValidation(t *testing.T) {
	badStep := repro.DefaultDeviceConfig()
	badStep.StepSec = 0
	badGovPeriod := repro.DefaultDeviceConfig()
	badGovPeriod.GovernorPeriodSec = badGovPeriod.StepSec / 2

	cases := []struct {
		name    string
		opts    []repro.SessionOption
		wantErr bool
	}{
		{"defaults", nil, false},
		{"explicit device", []repro.SessionOption{repro.WithDevice(repro.DefaultDeviceConfig())}, false},
		{"governor by name", []repro.SessionOption{repro.WithGovernorName("interactive")}, false},
		{"seed and ambient", []repro.SessionOption{repro.WithSeed(9), repro.WithAmbientC(30)}, false},
		{"zero step", []repro.SessionOption{repro.WithDevice(badStep)}, true},
		{"governor period below step", []repro.SessionOption{repro.WithDevice(badGovPeriod)}, true},
		{"unknown governor name", []repro.SessionOption{repro.WithGovernorName("turbo")}, true},
		{"governor set twice", []repro.SessionOption{repro.WithGovernorName("ondemand"), repro.WithGovernorName("powersave")}, true},
		{"ambient below range", []repro.SessionOption{repro.WithAmbientC(-80)}, true},
		{"ambient above range", []repro.SessionOption{repro.WithAmbientC(95)}, true},
		{"nil controller", []repro.SessionOption{repro.WithController(nil)}, true},
		{"nil governor", []repro.SessionOption{repro.WithGovernor(nil)}, true},
		{"nil observer", []repro.SessionOption{repro.WithObserver(nil)}, true},
		{"nil option", []repro.SessionOption{nil}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := repro.NewSession(tc.opts...)
			if tc.wantErr {
				if err == nil {
					t.Fatal("want error, got nil")
				}
				if s != nil {
					t.Fatal("want nil session on error")
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if s == nil || s.Phone() == nil {
				t.Fatal("valid options produced no phone")
			}
		})
	}
}

func TestSessionRunNilWorkload(t *testing.T) {
	s, err := repro.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background(), nil); err == nil {
		t.Fatal("Run(nil workload) should error")
	}
}

// TestSessionRunHonorsCancellation proves Session.Run stops mid-workload:
// the observer cancels the context partway through, and the returned
// partial result must cover less simulated time than the full run.
func TestSessionRunHonorsCancellation(t *testing.T) {
	w := repro.SquareWave(1, 10, 0.5, 0.9, 0.1, 600)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := repro.NewSession(
		repro.WithSeed(4),
		repro.WithObserver(func(smp repro.Sample) {
			if smp.TimeSec >= 30 {
				cancel()
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(ctx, w)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run should still return the partial result")
	}
	if res.DurSec < 30 || res.DurSec >= 600 {
		t.Fatalf("partial DurSec = %.1f, want in [30, 600)", res.DurSec)
	}
	if got := len(res.Trace.TimeSec); got == 0 {
		t.Fatal("partial run should carry a partial trace")
	}
}

// TestSessionRunDeadline: a deadline in the past stops the run before the
// first step.
func TestSessionRunDeadline(t *testing.T) {
	s, err := repro.NewSession(repro.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := s.Run(ctx, repro.Idle(120))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res.DurSec != 0 {
		t.Fatalf("DurSec = %.2f, want 0 for a pre-expired deadline", res.DurSec)
	}
}

// TestSessionObserverStreams verifies the observer sees one sample per
// record period with monotonically increasing timestamps, matching the
// trace the aggregate result carries.
func TestSessionObserverStreams(t *testing.T) {
	var seen []repro.Sample
	s, err := repro.NewSession(
		repro.WithSeed(6),
		repro.WithObserver(func(smp repro.Sample) { seen = append(seen, smp) }),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), repro.StaircaseRamp(2, 0.1, 0.9, 4, 30))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Trace.TimeSec) {
		t.Fatalf("observer saw %d samples, trace has %d rows", len(seen), len(res.Trace.TimeSec))
	}
	skin := res.Trace.Lookup("skin_c").Values
	for i, smp := range seen {
		if i > 0 && smp.TimeSec <= seen[i-1].TimeSec {
			t.Fatalf("sample %d time %.2f not after %.2f", i, smp.TimeSec, seen[i-1].TimeSec)
		}
		if smp.SkinC != skin[i] {
			t.Fatalf("sample %d skin %.3f != trace %.3f", i, smp.SkinC, skin[i])
		}
	}
}

// TestSessionStatePersists: consecutive runs on one session continue on
// the same (warmed) phone, like back-to-back apps on a real device.
func TestSessionStatePersists(t *testing.T) {
	s, err := repro.NewSession(repro.WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	hot := repro.SquareWave(3, 10, 0.9, 1.0, 0.8, 120)
	first, err := s.Run(ctx, hot)
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Run(ctx, hot)
	if err != nil {
		t.Fatal(err)
	}
	// The second run starts from the first run's heat; its starting (and
	// hence max) skin temperature cannot be below ambient-cold start.
	if second.MaxSkinC < first.MaxSkinC-2 {
		t.Fatalf("second run forgot the first's heat: %.1f vs %.1f", second.MaxSkinC, first.MaxSkinC)
	}
	if got := s.Phone().Time(); got < 235 {
		t.Fatalf("phone time %.1f, want ≥ ~240 after two 120 s runs", got)
	}
}

// TestDeprecatedNewPhoneNoPanic: the compatibility wrapper must not panic
// on bad input (it returns nil instead).
func TestDeprecatedNewPhoneNoPanic(t *testing.T) {
	bad := repro.DefaultDeviceConfig()
	bad.StepSec = -1
	if p := repro.NewPhone(bad); p != nil {
		t.Fatal("NewPhone(bad config) should return nil")
	}
	if p := repro.NewPhone(repro.DefaultDeviceConfig()); p == nil {
		t.Fatal("NewPhone(default config) should succeed")
	}
}
