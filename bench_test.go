// Benchmarks regenerating every table and figure of the paper, plus the
// design-choice ablations called out in DESIGN.md §7. Each benchmark runs
// one full experiment per iteration and reports the domain metrics the
// paper reports (peak temperatures, error rates, time-over-limit) via
// b.ReportMetric, so `go test -bench=.` doubles as the reproduction
// harness at reduced scale. Paper-scale artifacts come from
// `go run ./cmd/ustasim -experiment all`.
package repro_test

import (
	"context"
	"runtime"
	"sync"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/users"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchPl   *repro.Pipeline
)

// benchPipeline builds the shared reduced-scale pipeline once, outside any
// timed region.
func benchPipeline(b *testing.B) *repro.Pipeline {
	b.Helper()
	benchOnce.Do(func() {
		cfg := repro.DefaultExperimentConfig()
		cfg.Scale = 0.5
		cfg.CorpusPerRunSec = 1200
		cfg.MLPEpochs = 40
		benchPl = repro.NewPipeline(cfg)
		benchPl.Predictor() // build corpus + predictor up front
	})
	return benchPl
}

// BenchmarkFig1UserStudy regenerates Figure 1: the user-study session and
// per-user discomfort crossings.
func BenchmarkFig1UserStudy(b *testing.B) {
	pl := benchPipeline(b)
	b.ResetTimer()
	var crossed int
	for i := 0; i < b.N; i++ {
		res := repro.RunFig1(pl)
		crossed = 0
		for _, row := range res.Rows {
			if row.Crossed {
				crossed++
			}
		}
	}
	b.ReportMetric(float64(crossed), "users-crossed")
}

// BenchmarkFig2TimeOverLimit regenerates Figure 2: eleven USTA limit
// settings on the Skype call (paper anchor: 15.6 % for the default user).
func BenchmarkFig2TimeOverLimit(b *testing.B) {
	pl := benchPipeline(b)
	b.ResetTimer()
	var def float64
	for i := 0; i < b.N; i++ {
		def = repro.RunFig2(pl).DefaultRow().OverFrac
	}
	b.ReportMetric(def*100, "default-over-%")
}

// BenchmarkFig3PredictionModels regenerates Figure 3: 10-fold CV of the
// four models on both targets (paper anchors: REPTree 0.95 %/0.86 %).
func BenchmarkFig3PredictionModels(b *testing.B) {
	pl := benchPipeline(b)
	b.ResetTimer()
	var rep, lr float64
	for i := 0; i < b.N; i++ {
		res := repro.RunFig3(pl)
		r, _ := res.Row("REPTree")
		l, _ := res.Row("LinearRegression")
		rep, lr = r.SkinErrPct, l.SkinErrPct
	}
	b.ReportMetric(rep, "reptree-skin-err-%")
	b.ReportMetric(lr, "linreg-skin-err-%")
}

// BenchmarkFig4SkypeTrace regenerates Figure 4: baseline vs USTA Skype
// traces (paper anchors: 4.1 °C peak reduction, −34 % average frequency).
func BenchmarkFig4SkypeTrace(b *testing.B) {
	pl := benchPipeline(b)
	b.ResetTimer()
	var peakDelta, freqRed float64
	for i := 0; i < b.N; i++ {
		res := repro.RunFig4(pl)
		peakDelta, freqRed = res.PeakDeltaC, res.FreqReduction
	}
	b.ReportMetric(peakDelta, "peak-delta-C")
	b.ReportMetric(freqRed*100, "freq-reduction-%")
}

// BenchmarkFig5UserRatings regenerates Figure 5 (paper anchors: baseline
// 4.0, USTA 4.3).
func BenchmarkFig5UserRatings(b *testing.B) {
	pl := benchPipeline(b)
	b.ResetTimer()
	var base, usta float64
	for i := 0; i < b.N; i++ {
		res := repro.RunFig5(pl)
		base, usta = res.BaselineAvg, res.USTAAvg
	}
	b.ReportMetric(base, "baseline-rating")
	b.ReportMetric(usta, "usta-rating")
}

// BenchmarkTable1AllBenchmarks regenerates Table 1: 13 workloads × two
// schemes. The reported metric is the mean peak-skin reduction over the
// workloads where the baseline comes within 2 °C of the 37 °C limit — the
// set the paper highlights.
func BenchmarkTable1AllBenchmarks(b *testing.B) {
	pl := benchPipeline(b)
	b.ResetTimer()
	var meanReduction float64
	for i := 0; i < b.N; i++ {
		res := repro.RunTable1(pl)
		var sum float64
		n := 0
		for _, row := range res.Rows {
			if row.Baseline.MaxSkinC >= res.LimitC-2 {
				sum += row.Baseline.MaxSkinC - row.USTA.MaxSkinC
				n++
			}
		}
		if n > 0 {
			meanReduction = sum / float64(n)
		}
	}
	b.ReportMetric(meanReduction, "hot-set-peak-delta-C")
}

// BenchmarkPredictionOverhead measures one run-time skin prediction — the
// cost the paper reports as 5.603 ms per 3 s window on the Nexus 4
// (≈0.4 % overhead). The REPTree lookup here is nanoseconds; the paper's
// cost was dominated by the Java/WEKA stack.
func BenchmarkPredictionOverhead(b *testing.B) {
	pl := benchPipeline(b)
	pred := pl.Predictor()
	rec := repro.Record{CPUTempC: 55, BatteryTempC: 36, Util: 0.8, FreqMHz: 1242}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pred.PredictSkin(rec)
	}
}

// BenchmarkPredictionOverheadScreen measures the screen-side prediction
// (paper: 6.708 ms).
func BenchmarkPredictionOverheadScreen(b *testing.B) {
	pl := benchPipeline(b)
	pred := pl.Predictor()
	rec := repro.Record{CPUTempC: 55, BatteryTempC: 36, Util: 0.8, FreqMHz: 1242}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pred.PredictScreen(rec)
	}
}

// ustaSkypeRun executes a 15-minute USTA Skype call with the given
// controller tweaks and returns (peak skin, over-37 fraction, avg MHz).
func ustaSkypeRun(b *testing.B, pl *repro.Pipeline, mutate func(*core.USTA)) (float64, float64, float64) {
	b.Helper()
	cfg := repro.DefaultDeviceConfig()
	phone := device.MustNew(cfg, nil)
	u := core.NewUSTA(pl.Predictor(), users.DefaultLimitC)
	if mutate != nil {
		mutate(u)
	}
	phone.SetController(u)
	res := phone.Run(workload.Skype(77), 900)
	over := trace.FractionAbove(res.Trace.Lookup("skin_c").Values, users.DefaultLimitC)
	return res.MaxSkinC, over, res.AvgFreqMHz
}

// BenchmarkAblationPredictionPeriod sweeps the controller period (paper:
// 3 s; §IV-A suggests longer periods to cut overhead).
func BenchmarkAblationPredictionPeriod(b *testing.B) {
	pl := benchPipeline(b)
	for _, period := range []float64{1, 3, 10, 30} {
		b.Run(benchName("period", period), func(b *testing.B) {
			var peak, over float64
			for i := 0; i < b.N; i++ {
				peak, over, _ = ustaSkypeRun(b, pl, func(u *core.USTA) { u.Period = period })
			}
			b.ReportMetric(peak, "peak-C")
			b.ReportMetric(over*100, "over-%")
		})
	}
}

// BenchmarkAblationControllerShape compares the paper's ladder against the
// single-step and proportional alternatives.
func BenchmarkAblationControllerShape(b *testing.B) {
	pl := benchPipeline(b)
	shapes := []struct {
		name string
		pol  core.Policy
	}{
		{"ladder", nil}, // default
		{"hard", core.HardPolicy},
		{"proportional", core.ProportionalPolicy},
	}
	for _, s := range shapes {
		b.Run(s.name, func(b *testing.B) {
			var peak, mhz float64
			for i := 0; i < b.N; i++ {
				peak, _, mhz = ustaSkypeRun(b, pl, func(u *core.USTA) { u.Policy = s.pol })
			}
			b.ReportMetric(peak, "peak-C")
			b.ReportMetric(mhz/1000, "avg-GHz")
		})
	}
}

// BenchmarkAblationActivationMargin sweeps the activation margin (paper:
// 2 °C below the limit).
func BenchmarkAblationActivationMargin(b *testing.B) {
	pl := benchPipeline(b)
	for _, margin := range []float64{1, 2, 4} {
		b.Run(benchName("margin", margin), func(b *testing.B) {
			var peak, over float64
			for i := 0; i < b.N; i++ {
				peak, over, _ = ustaSkypeRun(b, pl, func(u *core.USTA) { u.Policy = core.MarginLadder(margin) })
			}
			b.ReportMetric(peak, "peak-C")
			b.ReportMetric(over*100, "over-%")
		})
	}
}

// BenchmarkAblationRuntimeModel swaps the run-time regressor (paper chose
// REPTree over M5P for build time and stability).
func BenchmarkAblationRuntimeModel(b *testing.B) {
	pl := benchPipeline(b)
	corpus := pl.Corpus()
	models := []struct {
		name    string
		factory func() repro.Regressor
	}{
		{"reptree", func() repro.Regressor { return repro.NewREPTreeRegressor(1) }},
		{"m5p", func() repro.Regressor { return repro.NewM5PRegressor() }},
		{"linreg", func() repro.Regressor { return repro.NewLinearRegressor() }},
	}
	for _, m := range models {
		pred, err := repro.TrainPredictorWith(corpus, m.factory)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.name, func(b *testing.B) {
			var peak, over float64
			for i := 0; i < b.N; i++ {
				peak, over, _ = ustaSkypeRun(b, pl, func(u *core.USTA) { u.Pred = pred })
			}
			b.ReportMetric(peak, "peak-C")
			b.ReportMetric(over*100, "over-%")
		})
	}
}

// BenchmarkAblationPerUser compares per-user limits against the 37 °C
// default across the population — the paper's central "user-specific"
// argument. Per-user configuration is not about minimizing violations in
// aggregate: it returns performance to tolerant users (higher average
// frequency) while protecting sensitive ones, so both sides of the
// trade-off are reported.
func BenchmarkAblationPerUser(b *testing.B) {
	pl := benchPipeline(b)
	run := func(limitFor func(users.User) float64) (meanOver, meanGHz float64) {
		pop := users.StudyPopulation()
		for _, u := range pop {
			cfg := repro.DefaultDeviceConfig()
			phone := device.MustNew(cfg, nil)
			ctrl := core.NewUSTA(pl.Predictor(), limitFor(u))
			phone.SetController(ctrl)
			res := phone.Run(workload.Skype(88), 600)
			meanOver += trace.FractionAbove(res.Trace.Lookup("skin_c").Values, u.SkinLimitC)
			meanGHz += res.AvgFreqMHz / 1000
		}
		n := float64(len(pop))
		return meanOver / n, meanGHz / n
	}
	b.Run("per-user", func(b *testing.B) {
		var over, ghz float64
		for i := 0; i < b.N; i++ {
			over, ghz = run(func(u users.User) float64 { return u.SkinLimitC })
		}
		b.ReportMetric(over*100, "mean-over-%")
		b.ReportMetric(ghz, "mean-GHz")
	})
	b.Run("default-37", func(b *testing.B) {
		var over, ghz float64
		for i := 0; i < b.N; i++ {
			over, ghz = run(func(users.User) float64 { return users.DefaultLimitC })
		}
		b.ReportMetric(over*100, "mean-over-%")
		b.ReportMetric(ghz, "mean-GHz")
	})
}

// BenchmarkFleetRun measures fleet throughput (jobs/sec) at 1, 4 and
// GOMAXPROCS workers on a fixed 16-job population batch, so future PRs can
// track the engine's scaling. The jobs are 5-minute Skype slices across
// the study population under per-user USTA — the paper's workload shape.
func BenchmarkFleetRun(b *testing.B) {
	pl := benchPipeline(b)
	pred := pl.Predictor()
	pop := repro.StudyPopulation()
	// One shared device configuration on the counter noise stream: legacy
	// math/rand reseeding is a fixed per-job cost (every pooled phone
	// reseeds four sensors), identical across stepping engines but large
	// enough to blur their ratio. Seed stays zero so the fleet still
	// derives a distinct seed per job.
	devCfg := repro.DefaultDeviceConfig()
	devCfg.Seed = 0
	devCfg.NoiseVersion = repro.NoiseVersionCounter
	jobs := make([]repro.Job, 16)
	for i := range jobs {
		u := pop[i%len(pop)]
		jobs[i] = repro.Job{
			Name:     u.ID,
			User:     u,
			Workload: repro.WorkloadByName("skype", uint64(i)),
			DurSec:   300,
			Device:   &devCfg,
			Controller: func(u repro.User) repro.Controller {
				return repro.NewUSTA(pred, u.SkinLimitC)
			},
		}
	}
	counts := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		counts = append(counts, p)
	}
	runBatch := func(b *testing.B, workers int, jobs []repro.Job) {
		b.Helper()
		fl := repro.NewFleet(repro.FleetConfig{Workers: workers, Seed: 42})
		ctx := context.Background()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results := fl.Run(ctx, jobs)
			for _, r := range results {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		b.ReportMetric(float64(len(jobs))*float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	}
	for _, workers := range counts {
		b.Run("workers-"+itoa(workers), func(b *testing.B) {
			runBatch(b, workers, jobs)
		})
	}
	// Trace-free variant: the memory diet for population sweeps that only
	// consume aggregates (identical physics, no Trace/Records retention).
	free := make([]repro.Job, len(jobs))
	copy(free, jobs)
	for i := range free {
		free[i].TraceFree = true
	}
	b.Run("workers-1-tracefree", func(b *testing.B) {
		b.ReportAllocs()
		runBatch(b, 1, free)
	})
	// Cohort-batched lockstep engine (trace-free, same jobs): the whole
	// batch shares one device configuration and duration, so it advances as
	// one cohort with a fused mat-mat per tick. Reported against
	// workers-1-tracefree, this is the batching speedup.
	b.Run("batched", func(b *testing.B) {
		fl := repro.NewFleet(repro.FleetConfig{Workers: 1, Seed: 42, Runner: repro.NewBatchRunner()})
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results := fl.Run(ctx, free)
			for _, r := range results {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		b.ReportMetric(float64(len(free))*float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	})
	// Event-driven engine (trace-free, same jobs): inter-event gaps fold
	// into held-input segments with dt-ladder physics jumps instead of
	// per-tick stepping. Reported against workers-1-tracefree, this is the
	// event speedup (the PR 9 acceptance ratio).
	b.Run("workers-1-tracefree-event", func(b *testing.B) {
		fl := repro.NewFleet(repro.FleetConfig{Workers: 1, Seed: 42, Event: repro.EventJump})
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results := fl.Run(ctx, free)
			for _, r := range results {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		b.ReportMetric(float64(len(free))*float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	})
	// Batched runner under the event engine: grouping, pooling and
	// reporting go through BatchRunner while each phone runs its own event
	// loop.
	b.Run("batched-event", func(b *testing.B) {
		fl := repro.NewFleet(repro.FleetConfig{
			Workers: 1, Seed: 42, Runner: repro.NewBatchRunner(), Event: repro.EventJump,
		})
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			results := fl.Run(ctx, free)
			for _, r := range results {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
		b.ReportMetric(float64(len(free))*float64(b.N)/b.Elapsed().Seconds(), "jobs/sec")
	})
}

// BenchmarkEventRun measures one device's stepping engines head to head on
// a 5-minute Skype slice (trace-free, stock governor, no controller — the
// pure stepping cost): the fixed-tick oracle, the event engine with every
// tick canonical (plumbing overhead), the held-segment sequential oracle,
// and the dt-ladder jump engine. The metric is simulated seconds per wall
// second.
func BenchmarkEventRun(b *testing.B) {
	modes := []struct {
		name string
		mode repro.EventMode
	}{
		{"off", repro.EventOff},
		{"tick", repro.EventTick},
		{"oracle", repro.EventOracle},
		{"jump", repro.EventJump},
	}
	const durSec = 300
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			cfg := repro.DefaultDeviceConfig()
			w := repro.WorkloadByName("skype", 7)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := repro.NewPhone(cfg)
				if p == nil {
					b.Fatal("NewPhone returned nil")
				}
				p.SetTraceFree(true)
				if _, err := p.RunEventContext(context.Background(), w, durSec, m.mode); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(durSec*float64(b.N)/b.Elapsed().Seconds(), "sim-sec/sec")
		})
	}
}

// BenchmarkSysIDCalibration measures the thermal system-identification
// path: fitting all 14 phone-model conductances from a one-hour logged
// trace (the porting-to-new-hardware workflow).
func BenchmarkSysIDCalibration(b *testing.B) {
	cfg := thermal.DefaultPhoneConfig()
	caps := []float64{cfg.CapDie, cfg.CapPkg, cfg.CapPCB, cfg.CapBattery,
		cfg.CapCoverMid, cfg.CapCoverUpper, cfg.CapScreen, cfg.CapFrame}
	edges := []thermal.SysIDEdge{
		{A: 0, B: 1}, {A: 1, B: 2}, {A: 2, B: 3}, {A: 2, B: 4}, {A: 2, B: 5},
		{A: 3, B: 4}, {A: 2, B: 6}, {A: 2, B: 7}, {A: 7, B: 4}, {A: 7, B: 6},
		{A: 4, B: thermal.AmbientNode}, {A: 5, B: thermal.AmbientNode},
		{A: 6, B: thermal.AmbientNode}, {A: 7, B: thermal.AmbientNode},
	}
	var relErr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net, _ := thermal.NewPhone(cfg)
		tr := thermal.CollectSysIDTrace(net, 0.5, 7200, cfg.Ambient, func(k int) []float64 {
			pw := make([]float64, 8)
			if (k/120)%2 == 0 {
				pw[0] = 3
			} else {
				pw[0] = 0.3
			}
			pw[6] = 0.4
			return pw
		})
		got, err := thermal.FitConductances(tr, caps, edges)
		if err != nil {
			b.Fatal(err)
		}
		relErr = (abs(got[0]-1/cfg.ResDiePkg)/(1/cfg.ResDiePkg) +
			abs(got[10]-1/cfg.ResAmbCoverMid)/(1/cfg.ResAmbCoverMid)) / 2
	}
	b.ReportMetric(relErr*100, "fit-err-%")
}

// BenchmarkSurfaceMap measures the Therminator-style cover map solve.
func BenchmarkSurfaceMap(b *testing.B) {
	cfg := thermal.PhoneCoverConfig(25)
	srcs := thermal.PhoneCoverSources(cfg, 2.1, 0.1, 1.0)
	var peak float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := thermal.SolveSurface(cfg, srcs)
		if err != nil {
			b.Fatal(err)
		}
		peak, _, _ = m.Max()
	}
	b.ReportMetric(peak, "peak-C")
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func benchName(prefix string, v float64) string {
	if v == float64(int(v)) {
		return prefix + "-" + itoa(int(v))
	}
	return prefix
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
