package repro_test

import (
	"bufio"
	"bytes"
	"context"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro"
)

// table1SpecPath is the scenario file expressing the paper's Table 1 grid
// at test scale (the full-scale twin lives in examples/sweep).
var table1SpecPath = filepath.Join("internal", "scenario", "testdata", "table1_reduced.json")

// scenarioPipeline builds the experiments pipeline whose configuration the
// reduced Table 1 scenario file mirrors (scale 0.5, corpus 1200 s, seed 42).
var (
	scenarioPlOnce sync.Once
	scenarioPl     *repro.Pipeline
)

func scenarioPipeline() *repro.Pipeline {
	scenarioPlOnce.Do(func() {
		cfg := repro.DefaultExperimentConfig()
		cfg.Scale = 0.5
		cfg.CorpusPerRunSec = 1200
		scenarioPl = repro.NewPipeline(cfg)
	})
	return scenarioPl
}

// TestExampleScenarioFilesParse keeps the bundled scenario files valid:
// the full-scale Table 1 grid in examples/ must parse and expand to the
// same shape as the reduced testdata twin.
func TestExampleScenarioFilesParse(t *testing.T) {
	spec, err := repro.LoadScenario(filepath.Join("examples", "sweep", "table1.json"))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "table1" || len(spec.Schemes) != 2 {
		t.Fatalf("unexpected example spec: %+v", spec)
	}
	reduced, err := repro.LoadScenario(table1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Seeds != reduced.Seeds {
		t.Fatalf("example and testdata Table 1 seeds diverged: %+v vs %+v", spec.Seeds, reduced.Seeds)
	}
}

// TestScenarioTable1MatchesExperiments is the API-redesign acceptance
// test: running the Table 1 scenario file through repro.RunScenario —
// including its self-trained predictor — must produce aggregates
// byte-identical to the Go-built internal/experiments path, at any worker
// count.
func TestScenarioTable1MatchesExperiments(t *testing.T) {
	spec, err := repro.LoadScenario(table1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	want := repro.RunTable1(scenarioPipeline())

	for _, workers := range []int{1, 3} {
		res, err := repro.RunScenario(context.Background(), spec, repro.ScenarioWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := res.FirstError(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		deltas, err := res.CompareSchemes("baseline", "usta")
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(deltas) != len(want.Rows) {
			t.Fatalf("workers=%d: %d cells vs %d table rows", workers, len(deltas), len(want.Rows))
		}
		for i, st := range res.Stats {
			row := want.Rows[st.Cell]
			if row.Bench != st.Workload {
				t.Fatalf("workers=%d: cell %d is %q, table row is %q", workers, st.Cell, st.Workload, row.Bench)
			}
			cell := row.Baseline
			if st.Scheme == "usta" {
				cell = row.USTA
			}
			r := st.Result
			if r.MaxScreenC != cell.MaxScreenC || r.MaxSkinC != cell.MaxSkinC || r.AvgFreqMHz/1000 != cell.AvgFreqGHz {
				t.Fatalf("workers=%d: job %d (%s) diverged from experiments path:\nscenario: screen=%v skin=%v GHz=%v\nexperiments: %+v",
					workers, i, st.Name, r.MaxScreenC, r.MaxSkinC, r.AvgFreqMHz/1000, cell)
			}
		}
	}
}

// TestObserverAndSinkStillStreamWhenTraceFree pins the WithTraceFree ×
// WithObserver/WithSink contract: trace-free runs must deliver exactly the
// samples a traced run would have recorded, to both hooks, while
// retaining no Trace or Records.
func TestObserverAndSinkStillStreamWhenTraceFree(t *testing.T) {
	w := repro.SquareWave(5, 10, 0.5, 0.9, 0.1, 120)

	traced, err := repro.NewSession(repro.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := traced.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Trace == nil || ref.Trace.Len() == 0 {
		t.Fatal("reference run has no trace")
	}

	var observed []float64
	ring := repro.NewRingSink(1000)
	free, err := repro.NewSession(
		repro.WithSeed(99),
		repro.WithTraceFree(),
		repro.WithObserver(func(s repro.Sample) { observed = append(observed, s.TimeSec) }),
		repro.WithSink(ring),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := free.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil || res.Records != nil {
		t.Fatal("trace-free run retained Trace/Records")
	}
	if len(observed) != ref.Trace.Len() {
		t.Fatalf("observer saw %d samples, traced run recorded %d rows", len(observed), ref.Trace.Len())
	}
	if ring.Total() != ref.Trace.Len() {
		t.Fatalf("sink saw %d samples, traced run recorded %d rows", ring.Total(), ref.Trace.Len())
	}
	for i, ts := range observed {
		if ts != ref.Trace.TimeSec[i] {
			t.Fatalf("observer sample %d at t=%g, trace row at t=%g", i, ts, ref.Trace.TimeSec[i])
		}
	}
	// And the aggregates must still be bit-identical to the traced run.
	if res.MaxSkinC != ref.MaxSkinC || res.EnergyJ != ref.EnergyJ || res.AvgFreqMHz != ref.AvgFreqMHz {
		t.Fatal("trace-free aggregates diverged from the traced run")
	}
}

// TestFleetSinkTagsJobs checks the batch-level sink wiring: every job's
// samples arrive tagged with its index.
func TestFleetSinkTagsJobs(t *testing.T) {
	w := repro.SquareWave(1, 10, 0.5, 0.9, 0.1, 60)
	jobs := make([]repro.Job, 3)
	for i := range jobs {
		jobs[i] = repro.Job{Workload: w, TraceFree: true}
	}
	ring := repro.NewRingSink(10000)
	fl := repro.NewFleet(repro.FleetConfig{Workers: 2, Seed: 1, Sink: ring})
	for _, r := range fl.Run(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Result.Trace != nil {
			t.Fatal("trace-free job retained a trace")
		}
	}
	perJob := map[int]int{}
	for _, e := range ring.Snapshot() {
		perJob[int(e.Job)]++
	}
	if len(perJob) != len(jobs) {
		t.Fatalf("sink saw %d distinct jobs, want %d", len(perJob), len(jobs))
	}
	for i := range jobs {
		if perJob[i] == 0 {
			t.Fatalf("job %d produced no samples", i)
		}
		if perJob[i] != perJob[0] {
			t.Fatalf("job sample counts diverge: %v", perJob)
		}
	}
}

// TestThousandJobTraceFreeSweepStreamsToJSONL is the streaming acceptance
// test: a >1k-job trace-free sweep through a JSONL sink retains no per-job
// traces while the sink receives every sample of every job.
func TestThousandJobTraceFreeSweepStreamsToJSONL(t *testing.T) {
	spec, err := repro.ParseScenario([]byte(`{
		"version": 1,
		"name": "thousand-job-stream",
		"workloads": ["all"],
		"population": ["all"],
		"ambients_c": [10, 15, 20, 25, 30, 35, 40, 45],
		"duration": {"sec": 20},
		"trace_free": true
	}`))
	if err != nil {
		t.Fatal(err)
	}

	// Per-job sample count reference: one traced run of the same duration
	// and record period.
	ref, err := repro.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.RunFor(context.Background(), repro.WorkloadByName("skype", 1), 20)
	if err != nil {
		t.Fatal(err)
	}
	perJob := refRes.Trace.Len()
	if perJob == 0 {
		t.Fatal("reference run recorded no rows")
	}

	var buf bytes.Buffer
	js := repro.NewJSONLSink(&buf)
	res, err := repro.RunScenario(context.Background(), spec, repro.ScenarioSink(js))
	if err != nil {
		t.Fatal(err)
	}
	if err := js.Close(); err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	if n := len(res.Results); n != 13*10*8 {
		t.Fatalf("sweep ran %d jobs, want %d", n, 13*10*8)
	}
	for _, r := range res.Results {
		if r.Result.Trace != nil || r.Result.Records != nil {
			t.Fatalf("job %d retained Trace/Records in a trace-free sweep", r.Index)
		}
	}
	lines := 0
	seen := map[string]bool{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
		line := sc.Text()
		job := line[:strings.Index(line, ",")]
		seen[job] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if want := len(res.Results) * perJob; lines != want {
		t.Fatalf("sink received %d samples, want %d (%d jobs × %d)", lines, want, len(res.Results), perJob)
	}
	if len(seen) != len(res.Results) {
		t.Fatalf("sink saw %d distinct jobs, want %d", len(seen), len(res.Results))
	}
}

// TestScenarioViolationAnalyticsTraceFree runs a small trace-free
// ambient × limit sweep with a streaming violation sink and checks the
// heat-map analytics it feeds.
func TestScenarioViolationAnalyticsTraceFree(t *testing.T) {
	spec, err := repro.ParseScenario([]byte(`{
		"version": 1,
		"name": "heat",
		"workloads": ["skype"],
		"population": ["default"],
		"ambients_c": [15, 35],
		"limits_c": [33, 39],
		"schemes": [{"name": "usta", "controller": "usta"}],
		"duration": {"sec": 120},
		"predictor": {"corpus_per_run_sec": 900},
		"trace_free": true
	}`))
	if err != nil {
		t.Fatal(err)
	}
	pred := scenarioPipeline().Predictor()

	// An external violation sink must see the same stream RunScenario's
	// own trace-free accounting uses.
	var external *repro.ViolationSink
	res, err := repro.RunScenario(context.Background(), spec, repro.ScenarioPredictor(pred),
		repro.ScenarioSink(repro.SinkFromFunc(func(repro.Sample) {})))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	external = repro.NewViolationSink(res.Grid.Limits())
	res2, err := repro.RunScenario(context.Background(), spec,
		repro.ScenarioPredictor(pred), repro.ScenarioSink(external))
	if err != nil {
		t.Fatal(err)
	}
	// Trace-free sweeps get violation data automatically (RunScenario tees
	// an internal ViolationSink); the external sink must agree.
	for i, st := range res.Stats {
		if !st.HasViolationData() {
			t.Fatalf("trace-free stat %d has no violation data; RunScenario should accumulate it", i)
		}
		if st.OverFrac != res2.Stats[i].OverFrac {
			t.Fatalf("stat %d over-frac differs across identical runs", i)
		}
	}
	stats2 := make([]repro.JobStat, len(res2.Stats))
	copy(stats2, res2.Stats)
	external.Apply(stats2)
	for i := range stats2 {
		if stats2[i].OverFrac != res.Stats[i].OverFrac || stats2[i].MeanExcessC != res.Stats[i].MeanExcessC {
			t.Fatalf("external sink disagrees with the internal accounting at job %d", i)
		}
	}
	h := res.ViolationHeatMap()
	if len(h.Rows) != 2 || len(h.Cols) != 2 {
		t.Fatalf("heat map is %dx%d, want 2x2", len(h.Rows), len(h.Cols))
	}
	for ri := range h.Rows {
		for ci := range h.Cols {
			v := h.Cells[ri][ci]
			if math.IsNaN(v) || v < 0 || v > 1 {
				t.Fatalf("cell [%d][%d] = %v, want a fraction", ri, ci, v)
			}
		}
	}
	// Physics sanity: at equal limits, the hotter ambient violates at
	// least as much; at equal ambient, the lower limit violates at least
	// as much.
	if h.Cells[1][0] < h.Cells[0][0] {
		t.Fatalf("hotter ambient should violate more: %v", h.Cells)
	}
	if h.Cells[1][0] < h.Cells[1][1] {
		t.Fatalf("lower limit should violate more: %v", h.Cells)
	}
	if csv := heatCSV(t, h); !strings.Contains(csv, "ambient_c") {
		t.Fatalf("heat map CSV missing axis label:\n%s", csv)
	}
}

func heatCSV(t *testing.T, h *repro.HeatMap) string {
	t.Helper()
	var b strings.Builder
	if err := h.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
