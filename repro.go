// Package repro is the public API of the USTA reproduction: a simulation
// study of "User-Specific Skin Temperature-Aware DVFS for Smartphones"
// (Egilmez, Memik, Ogrenci-Memik, Ergin — DATE 2015).
//
// The package re-exports the building blocks a downstream user needs:
//
//   - a simulated Nexus-4-class handset (thermal RC network + DVFS-capable
//     SoC + sensors + cpufreq governor): NewPhone, DefaultDeviceConfig
//   - the paper's thirteen evaluation workloads plus synthetic generators:
//     Benchmarks, WorkloadByName
//   - the training pipeline for the run-time skin/screen temperature
//     predictor: CollectCorpus, TrainPredictor
//   - the USTA controller itself: NewUSTA (attach with Phone.SetController)
//   - the ten-participant study population: StudyPopulation, DefaultLimitC
//   - one runner per published table/figure: NewPipeline, RunFig1…RunFig5,
//     RunTable1
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	cfg := repro.DefaultDeviceConfig()
//	corpus := repro.CollectCorpus(cfg, repro.Benchmarks(1), 0)
//	pred, _ := repro.TrainPredictor(corpus)
//	phone := repro.NewPhone(cfg)
//	phone.SetController(repro.NewUSTA(pred, repro.DefaultLimitC))
//	res := phone.Run(repro.WorkloadByName("skype", 7), 0)
//	fmt.Printf("peak skin %.1f °C at %.2f GHz average\n",
//		res.MaxSkinC, res.AvgFreqMHz/1000)
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/ml/linreg"
	"repro/internal/ml/m5p"
	"repro/internal/ml/mlp"
	"repro/internal/ml/tree"
	"repro/internal/sensors"
	"repro/internal/users"
	"repro/internal/workload"
)

// Re-exported core types. The aliases keep one canonical implementation in
// the internal packages while giving external users a single import.
type (
	// Phone is the simulated handset.
	Phone = device.Phone
	// DeviceConfig parameterizes the handset.
	DeviceConfig = device.Config
	// RunResult aggregates one workload execution.
	RunResult = device.RunResult
	// Controller is the thermal-management hook (USTA implements it).
	Controller = device.Controller

	// Workload is a deterministic demand trace.
	Workload = workload.Workload
	// WorkloadProgram is a phase-structured workload.
	WorkloadProgram = workload.Program

	// Record is one line of the on-device logging app.
	Record = sensors.Record

	// Predictor predicts skin/screen temperature from a Record.
	Predictor = core.Predictor
	// USTA is the skin-temperature-aware DVFS controller.
	USTA = core.USTA
	// Policy maps limit margin to a frequency clamp.
	Policy = core.Policy

	// User is one study participant.
	User = users.User

	// Regressor is a trainable regression model.
	Regressor = ml.Regressor

	// ExperimentConfig parameterizes the evaluation pipeline.
	ExperimentConfig = experiments.Config
	// Pipeline caches the corpus and predictor across experiments.
	Pipeline = experiments.Pipeline
)

// DefaultLimitC is the "default user" comfort limit (37 °C), the average of
// the study population's reported limits.
const DefaultLimitC = users.DefaultLimitC

// DefaultDeviceConfig returns the calibrated Nexus-4-like device
// configuration.
func DefaultDeviceConfig() DeviceConfig { return device.DefaultConfig() }

// NewPhone builds a simulated handset with the stock ondemand governor.
func NewPhone(cfg DeviceConfig) *Phone { return device.MustNew(cfg, nil) }

// Benchmarks returns the paper's thirteen evaluation workloads.
func Benchmarks(seed uint64) []Workload {
	bs := workload.Benchmarks(seed)
	out := make([]Workload, len(bs))
	for i, b := range bs {
		out[i] = b
	}
	return out
}

// BenchmarkNames lists the thirteen workload names in Table 1 column order.
func BenchmarkNames() []string {
	return append([]string(nil), workload.BenchmarkNames...)
}

// WorkloadByName returns one of the thirteen paper workloads by name, or
// nil for unknown names.
func WorkloadByName(name string, seed uint64) Workload {
	w := workload.ByName(name, seed)
	if w == nil {
		return nil
	}
	return w
}

// CollectCorpus runs the workloads under the stock governor and returns the
// training log (maxPerRunSec <= 0 runs each in full).
func CollectCorpus(cfg DeviceConfig, loads []Workload, maxPerRunSec float64) []Record {
	return core.CollectCorpus(cfg, loads, maxPerRunSec)
}

// TrainPredictor fits the paper's REPTree predictor on a corpus.
func TrainPredictor(corpus []Record) (*Predictor, error) {
	return core.Train(corpus, nil)
}

// TrainPredictorWith fits a predictor using a custom model factory.
func TrainPredictorWith(corpus []Record, factory func() Regressor) (*Predictor, error) {
	return core.Train(corpus, factory)
}

// NewUSTA returns the paper-configured controller (3 s period, ladder
// policy) for the given skin limit.
func NewUSTA(pred *Predictor, skinLimitC float64) *USTA {
	return core.NewUSTA(pred, skinLimitC)
}

// NewRecalibrator wraps a USTA controller with periodic predictor
// retraining from the phone's own instrumented log (see core.Recalibrator).
func NewRecalibrator(u *USTA) *core.Recalibrator { return core.NewRecalibrator(u) }

// SavePredictor serializes a trained predictor as JSON.
func SavePredictor(w io.Writer, p *Predictor) error { return core.SavePredictor(w, p) }

// LoadPredictor deserializes a predictor saved by SavePredictor.
func LoadPredictor(r io.Reader) (*Predictor, error) { return core.LoadPredictor(r) }

// StudyPopulation returns the ten study participants.
func StudyPopulation() []User { return users.StudyPopulation() }

// DefaultExperimentConfig returns the paper-scale experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// NewPipeline creates an experiment pipeline (corpus and predictor are
// built lazily and cached).
func NewPipeline(cfg ExperimentConfig) *Pipeline { return experiments.NewPipeline(cfg) }

// RunFig1 reproduces Figure 1 (per-user comfort limits / user study).
func RunFig1(pl *Pipeline) *experiments.Fig1Result { return experiments.RunFig1(pl) }

// RunFig2 reproduces Figure 2 (% time over limit, 11 settings).
func RunFig2(pl *Pipeline) *experiments.Fig2Result { return experiments.RunFig2(pl) }

// RunFig3 reproduces Figure 3 (prediction-model error rates).
func RunFig3(pl *Pipeline) *experiments.Fig3Result { return experiments.RunFig3(pl) }

// RunFig4 reproduces Figure 4 (Skype traces, baseline vs USTA).
func RunFig4(pl *Pipeline) *experiments.Fig4Result { return experiments.RunFig4(pl) }

// RunFig5 reproduces Figure 5 (user ratings and preferences).
func RunFig5(pl *Pipeline) *experiments.Fig5Result { return experiments.RunFig5(pl) }

// RunTable1 reproduces Table 1 (13 workloads × baseline/USTA).
func RunTable1(pl *Pipeline) *experiments.Table1Result { return experiments.RunTable1(pl) }

// Controller clamp policies (for USTA.Policy): the paper's ladder, the
// single-step and proportional ablations, and the margin-parameterized
// generalization.
var (
	// LadderPolicy is the paper's §III-B laddered clamp.
	LadderPolicy Policy = core.LadderPolicy
	// HardPolicy clamps straight to the minimum inside the margin.
	HardPolicy Policy = core.HardPolicy
	// ProportionalPolicy scales the clamp linearly with the margin.
	ProportionalPolicy Policy = core.ProportionalPolicy
)

// MarginLadder returns a ladder policy with a custom activation margin
// (the paper's controller is MarginLadder(2)).
func MarginLadder(marginC float64) Policy { return core.MarginLadder(marginC) }

// NewREPTreeRegressor returns the paper's run-time model (REPTree).
func NewREPTreeRegressor(seed int64) Regressor { return tree.New(seed) }

// NewM5PRegressor returns an M5P model tree.
func NewM5PRegressor() Regressor { return m5p.New() }

// NewLinearRegressor returns an OLS linear regression model.
func NewLinearRegressor() Regressor { return linreg.New() }

// NewMLPRegressor returns a WEKA-default multilayer perceptron.
func NewMLPRegressor(seed int64) Regressor { return mlp.New(seed) }

// SquareWave, StaircaseRamp, RandomPhases and Idle build synthetic
// workloads for custom experiments and training-corpus diversification.
func SquareWave(seed uint64, period, duty, high, low, dur float64) Workload {
	return workload.SquareWave(seed, period, duty, high, low, dur)
}

// StaircaseRamp steps CPU demand from lo to hi across the given steps.
func StaircaseRamp(seed uint64, lo, hi float64, steps int, stepDur float64) Workload {
	return workload.StaircaseRamp(seed, lo, hi, steps, stepDur)
}

// RandomPhases builds a seeded random phase mix.
func RandomPhases(seed uint64, n int, phaseDur float64) Workload {
	return workload.RandomPhases(seed, n, phaseDur)
}

// Idle builds a screen-off idle workload.
func Idle(dur float64) Workload { return workload.Idle(dur) }

// DailyMix builds a ~100-minute mixed-usage session (idle, browsing,
// video, a call, gaming, charging) for end-to-end scenarios.
func DailyMix(seed uint64) Workload { return workload.DailyMix(seed) }
