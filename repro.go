// Package repro is the public API of the USTA reproduction: a simulation
// study of "User-Specific Skin Temperature-Aware DVFS for Smartphones"
// (Egilmez, Memik, Ogrenci-Memik, Ergin — DATE 2015).
//
// The package re-exports the building blocks a downstream user needs:
//
//   - a simulated Nexus-4-class handset (thermal RC network + DVFS-capable
//     SoC + sensors + cpufreq governor) behind an options-based Session:
//     NewSession, WithDevice, WithGovernor, WithController, WithAmbientC,
//     WithSeed, WithObserver
//   - a concurrent multi-user batch engine for sweeps over users, device
//     configs, workloads and controllers: NewFleet, Job, JobResult
//   - the paper's thirteen evaluation workloads plus synthetic generators:
//     Benchmarks, WorkloadByName
//   - the training pipeline for the run-time skin/screen temperature
//     predictor: CollectCorpusContext, TrainPredictor
//   - the USTA controller itself: NewUSTA (attach with WithController)
//   - the ten-participant study population: StudyPopulation, DefaultLimitC
//   - one runner per published table/figure: NewPipeline, RunFig1…RunFig5,
//     RunTable1
//
// Quickstart (see examples/quickstart for the runnable version):
//
//	cfg := repro.DefaultDeviceConfig()
//	corpus, _ := repro.CollectCorpusContext(ctx, cfg, repro.Benchmarks(1), 0, 0)
//	pred, _ := repro.TrainPredictor(corpus)
//	s, err := repro.NewSession(
//		repro.WithDevice(cfg),
//		repro.WithController(repro.NewUSTA(pred, repro.DefaultLimitC)),
//	)
//	if err != nil { ... }
//	res, _ := s.Run(ctx, repro.WorkloadByName("skype", 7))
//	fmt.Printf("peak skin %.1f °C at %.2f GHz average\n",
//		res.MaxSkinC, res.AvgFreqMHz/1000)
//
// Population-scale sweeps go through a Fleet, which fans independent jobs
// out across a worker pool with deterministic per-job seeding — the same
// jobs produce byte-identical results at any worker count:
//
//	fl := repro.NewFleet(repro.FleetConfig{Workers: runtime.GOMAXPROCS(0)})
//	jobs := make([]repro.Job, 0, len(repro.StudyPopulation()))
//	for _, u := range repro.StudyPopulation() {
//		jobs = append(jobs, repro.Job{
//			User:     u,
//			Workload: repro.WorkloadByName("skype", 7),
//			Controller: func(u repro.User) repro.Controller {
//				return repro.NewUSTA(pred, u.SkinLimitC)
//			},
//		})
//	}
//	for _, jr := range fl.Run(ctx, jobs) { ... }
package repro

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/fleet/durable"
	fleetnet "repro/internal/fleet/net"
	"repro/internal/fleet/shard"
	"repro/internal/governor"
	"repro/internal/ml"
	"repro/internal/ml/linreg"
	"repro/internal/ml/m5p"
	"repro/internal/ml/mlp"
	"repro/internal/ml/tree"
	"repro/internal/scenario"
	"repro/internal/sensors"
	"repro/internal/sink"
	"repro/internal/users"
	"repro/internal/workload"
)

// Re-exported core types. The aliases keep one canonical implementation in
// the internal packages while giving external users a single import.
type (
	// Phone is the simulated handset.
	Phone = device.Phone
	// DeviceConfig parameterizes the handset.
	DeviceConfig = device.Config
	// RunResult aggregates one workload execution.
	RunResult = device.RunResult
	// Sample is one telemetry point streamed to a WithObserver hook.
	Sample = device.Sample
	// Controller is the thermal-management hook (USTA implements it).
	Controller = device.Controller
	// Governor is the cpufreq policy interface.
	Governor = governor.Governor
	// EventMode selects the stepping engine (fixed-tick oracle or the
	// event-driven engines; see device.EventMode for the exactness
	// guarantees of each mode).
	EventMode = device.EventMode

	// Session is one simulated handset behind options-based construction
	// and context-aware execution.
	Session = fleet.Session
	// SessionOption configures NewSession.
	SessionOption = fleet.Option
	// Fleet is the concurrent multi-user batch engine.
	Fleet = fleet.Fleet
	// FleetConfig parameterizes NewFleet.
	FleetConfig = fleet.Config
	// Job is one unit of fleet work: (user, workload, device config,
	// controller factory).
	Job = fleet.Job
	// JobSpec is a Job's serializable description — what lets it cross a
	// process boundary under a shard runner. Scenario-expanded jobs carry
	// one automatically.
	JobSpec = fleet.JobSpec
	// JobResult is one job's outcome, with per-job errors.
	JobResult = fleet.JobResult
	// Runner executes fleet batches: the in-process pool by default, or a
	// multi-process shard coordinator (NewShardRunner).
	Runner = fleet.Runner

	// Workload is a deterministic demand trace.
	Workload = workload.Workload
	// WorkloadProgram is a phase-structured workload.
	WorkloadProgram = workload.Program

	// Record is one line of the on-device logging app.
	Record = sensors.Record

	// Predictor predicts skin/screen temperature from a Record.
	Predictor = core.Predictor
	// USTA is the skin-temperature-aware DVFS controller.
	USTA = core.USTA
	// Policy maps limit margin to a frequency clamp.
	Policy = core.Policy

	// User is one study participant.
	User = users.User

	// Regressor is a trainable regression model.
	Regressor = ml.Regressor

	// ExperimentConfig parameterizes the evaluation pipeline.
	ExperimentConfig = experiments.Config
	// Pipeline caches the corpus and predictor across experiments.
	Pipeline = experiments.Pipeline

	// ScenarioSpec is a declarative sweep: a versioned population ×
	// workloads × ambients × scheme grid that expands deterministically
	// into fleet jobs. Build one in Go or load it with LoadScenario.
	ScenarioSpec = scenario.Spec
	// ScenarioScheme is one governor/controller/limit point of a spec.
	ScenarioScheme = scenario.Scheme
	// ScenarioGrid is an expanded scenario: jobs plus their grid
	// coordinates.
	ScenarioGrid = scenario.Grid
	// ScenarioPoint is one job's grid coordinates.
	ScenarioPoint = scenario.Point

	// Sink consumes streamed per-job telemetry; see NewCSVSink,
	// NewJSONLSink, NewRingSink, NewDownsampler, NewTeeSink.
	Sink = sink.Sink
	// SinkJobID tags a sample with the job that produced it.
	SinkJobID = sink.JobID

	// JobStat joins one job's grid coordinates, run outcome and violation
	// statistics — the unit the analytics aggregate over.
	JobStat = analytics.JobStat
	// UserComfort is one user's violation/comfort distribution.
	UserComfort = analytics.UserComfort
	// HeatMap is a row × column matrix of aggregated sweep results.
	HeatMap = analytics.HeatMap
	// SchemeDelta is one grid cell's scheme-vs-scheme outcome.
	SchemeDelta = analytics.Delta
	// ViolationSink accumulates streaming per-job time-over-limit
	// statistics (see NewViolationSink).
	ViolationSink = analytics.ViolationSink
)

// DefaultLimitC is the "default user" comfort limit (37 °C), the average of
// the study population's reported limits.
const DefaultLimitC = users.DefaultLimitC

// Event stepping modes, re-exported for callers configuring fleets or
// scenarios without importing internal packages.
const (
	EventOff    = device.EventOff
	EventTick   = device.EventTick
	EventOracle = device.EventOracle
	EventJump   = device.EventJump
)

// ParseEventMode parses the CLI spelling of an event mode
// (off|tick|oracle|jump).
func ParseEventMode(s string) (EventMode, error) { return device.ParseEventMode(s) }

// Sensor noise stream versions for DeviceConfig.NoiseVersion: legacy is
// the math/rand stream every committed golden was generated with;
// counter is the splitmix64 counter stream with O(1) reseeding
// (recommended for large fleet sweeps, where legacy reseeding is a
// fixed per-job cost).
const (
	NoiseVersionLegacy  = sensors.NoiseVersionLegacy
	NoiseVersionCounter = sensors.NoiseVersionCounter
)

// DefaultDeviceConfig returns the calibrated Nexus-4-like device
// configuration.
func DefaultDeviceConfig() DeviceConfig { return device.DefaultConfig() }

// NewSession assembles a simulated handset from functional options. It
// never panics: invalid configurations are reported as errors. The zero
// option set is the calibrated default phone under the stock ondemand
// governor.
func NewSession(opts ...SessionOption) (*Session, error) { return fleet.NewSession(opts...) }

// WithDevice sets the session's handset configuration.
func WithDevice(cfg DeviceConfig) SessionOption { return fleet.WithDevice(cfg) }

// WithGovernor installs a specific cpufreq governor instance.
func WithGovernor(g Governor) SessionOption { return fleet.WithGovernor(g) }

// WithGovernorName selects a governor by its sysfs name ("ondemand",
// "interactive", "conservative", "schedutil", "performance", "powersave").
func WithGovernorName(name string) SessionOption { return fleet.WithGovernorName(name) }

// WithController attaches a thermal controller (e.g. NewUSTA) to the
// session's phone.
func WithController(c Controller) SessionOption { return fleet.WithController(c) }

// WithAmbientC overrides the ambient temperature in °C.
func WithAmbientC(c float64) SessionOption { return fleet.WithAmbientC(c) }

// WithSeed overrides the device seed driving sensor noise.
func WithSeed(seed int64) SessionOption { return fleet.WithSeed(seed) }

// WithObserver installs a per-sample telemetry hook fired once per trace
// row during a run — live streaming instead of the aggregate RunResult.
func WithObserver(fn func(Sample)) SessionOption { return fleet.WithObserver(fn) }

// WithTraceFree runs the session without retaining Trace/Records while
// keeping all aggregates identical; pair with WithObserver to stream
// telemetry instead of buffering it. Fleet jobs opt in per job via
// Job.TraceFree.
func WithTraceFree() SessionOption { return fleet.WithTraceFree() }

// WithSink streams the session's telemetry into a sink (job tag 0);
// composable with WithObserver, and still fires for every sample under
// WithTraceFree. The caller owns the sink's lifecycle.
func WithSink(s Sink) SessionOption { return fleet.WithSink(s) }

// NewFleet creates the concurrent batch engine; the zero FleetConfig is
// valid and uses GOMAXPROCS workers.
func NewFleet(cfg FleetConfig) *Fleet { return fleet.New(cfg) }

// NewBatchRunner returns the cohort-batched lockstep fleet Runner: jobs
// sharing a thermal configuration, base step and duration advance in
// lockstep, tick by tick, with one fused 8×N mat-mat per cohort per tick
// instead of one 8×8 mat-vec per phone. Results, traces and streamed
// telemetry are byte-identical to the default in-process runner at any
// worker count; throughput is substantially higher whenever many jobs
// share a device configuration (scenario grid sweeps). Pass it to
// FleetConfig.Runner or ScenarioRunner, or use WithBatchedRunner /
// `ustasim -batch` for scenarios.
func NewBatchRunner() Runner { return fleet.NewBatchRunner() }

// NewShardRunner returns a fleet Runner that partitions every batch into n
// contiguous shards (n <= 0: GOMAXPROCS), each executed by a worker
// subprocess speaking length-prefixed JSON over its pipes, and merges
// results — and streamed telemetry — back into submission order. Output is
// byte-identical to the in-process runner: seeds are resolved from job
// position before dispatch. Jobs must carry a JobSpec (scenario-expanded
// jobs do); set the runner's Predictor when specs use the usta controller,
// or let RunScenario do it. By default workers are spawned by re-executing
// the current binary, which must call ShardWorkerMain first thing in
// main(); set Command to a built cmd/ustaworker to avoid that.
func NewShardRunner(n int) *shard.Runner { return shard.New(n) }

// NewNetRunner returns a fleet Runner that dispatches shards to long-lived
// worker daemons (`ustaworker -listen host:port`) over TCP instead of
// spawning subprocesses. Each host advertises its shard capacity in a
// hello handshake; the coordinator keeps that many dispatch slots open per
// host, tracks liveness with heartbeat deadlines, and on a lost worker
// re-dispatches only the jobs whose results never arrived. Seeds are
// resolved coordinator-side from job position, so a distributed run is
// byte-identical to the in-process runner — including after a mid-shard
// worker death and retry. Hosts are self-healing: a dead host is redialed
// with exponential backoff and seeded jitter behind a circuit breaker
// (half-open probe after cooldown) and re-admitted mid-run; straggler
// shards are hedged onto idle hosts with first-reporter-wins dedup
// (telemetry stays exactly-once); and with FallbackLocal set, a run whose
// hosts all stay down past AllDeadDeadline finishes on the in-process
// pool instead of failing — still byte-identical, seeds were already
// pinned. Jobs must carry a JobSpec (scenario-expanded jobs do); set the
// runner's Predictor when specs use the usta controller, or let
// RunScenario do it. See the Runner's fields (exported from
// internal/fleet/net) for retry, backoff, breaker, hedging, admission and
// heartbeat tuning, and Runner.Stats for the per-run recovery snapshot.
func NewNetRunner(hosts []string) *fleetnet.Runner { return fleetnet.New(hosts) }

// ShardWorkerMain serves a shard request over stdin/stdout and exits when
// this process was spawned as a shard worker; otherwise it returns
// immediately. Binaries (and TestMains) that coordinate shard runs with
// the default self-exec worker command must call it before doing anything
// else.
func ShardWorkerMain() { shard.Main() }

// LoadScenario reads a declarative sweep spec from a JSON or YAML file
// (format autodetected from content) and validates it.
func LoadScenario(path string) (*ScenarioSpec, error) { return scenario.Load(path) }

// ParseScenario decodes and validates a sweep spec from JSON or YAML
// bytes. Unknown fields are rejected.
func ParseScenario(data []byte) (*ScenarioSpec, error) { return scenario.Parse(data) }

// SweepResult is one scenario run: the expanded grid, the per-job fleet
// results (submission order), and the joined per-job stats the analytics
// helpers consume.
type SweepResult struct {
	Grid    *ScenarioGrid
	Results []JobResult
	Stats   []JobStat
}

// FirstError returns the first failed job's error, or nil.
func (r *SweepResult) FirstError() error { return fleet.FirstError(r.Results) }

// ComfortByUser aggregates the sweep into per-user comfort distributions.
func (r *SweepResult) ComfortByUser() []UserComfort { return analytics.ComfortByUser(r.Stats) }

// ViolationHeatMap pivots the sweep into an ambient × limit map of mean
// time-over-limit.
func (r *SweepResult) ViolationHeatMap() *HeatMap { return analytics.ViolationHeatMap(r.Stats) }

// CompareSchemes reduces the sweep to per-cell deltas (alt − base).
func (r *SweepResult) CompareSchemes(base, alt string) ([]SchemeDelta, error) {
	return analytics.CompareSchemes(r.Stats, base, alt)
}

// scenarioRun accumulates RunScenario options.
type scenarioRun struct {
	workers  int
	shards   int
	sharded  bool
	batched  bool
	runner   Runner
	device   *DeviceConfig
	pred     *Predictor
	sink     Sink
	progress func(done, total int)
	event    EventMode
	walPath  string
	resume   bool
}

// ScenarioOption configures RunScenario.
type ScenarioOption func(*scenarioRun)

// ScenarioWorkers bounds the sweep's worker pool (<= 0: GOMAXPROCS).
// Results are identical at any width. Under ScenarioShards this is the
// pool width inside each worker process.
func ScenarioWorkers(n int) ScenarioOption { return func(rc *scenarioRun) { rc.workers = n } }

// ScenarioShards runs the sweep across n worker subprocesses (<= 0:
// GOMAXPROCS) instead of in-process goroutines, with results and sink
// telemetry byte-identical to the local runner. The calling binary must
// call ShardWorkerMain at the top of main(); see NewShardRunner for spawn
// details and ScenarioRunner to customize them.
func ScenarioShards(n int) ScenarioOption {
	return func(rc *scenarioRun) { rc.shards = n; rc.sharded = true }
}

// ScenarioRunner executes the sweep on a custom fleet Runner — e.g. a
// NewShardRunner with an explicit worker Command, or NewBatchRunner. It
// overrides ScenarioShards. A shard or net runner without a predictor is
// handed the sweep's (supplied or self-trained) predictor automatically.
func ScenarioRunner(r Runner) ScenarioOption {
	return func(rc *scenarioRun) { rc.runner = r }
}

// WithBatchedRunner executes the sweep on the cohort-batched lockstep
// engine (NewBatchRunner): grid cells sharing a device configuration and
// duration advance tick-synchronized with one fused mat-mat per cohort.
// Results are byte-identical to the default runner. Composes with
// ScenarioShards (and with a ScenarioRunner that is a shard runner): each
// worker process then batches its own shard. Combining it with any other
// custom ScenarioRunner is a configuration error — RunScenario reports it
// rather than silently running unbatched.
func WithBatchedRunner() ScenarioOption {
	return func(rc *scenarioRun) { rc.batched = true }
}

// ScenarioDevice sets the base device configuration the grid expands
// against (default: DefaultDeviceConfig).
func ScenarioDevice(cfg DeviceConfig) ScenarioOption {
	return func(rc *scenarioRun) { rc.device = &cfg }
}

// ScenarioPredictor supplies the trained predictor backing usta schemes.
// Without it, RunScenario trains one from the spec's predictor settings
// (deterministic, but a corpus collection per call — share a predictor
// across sweeps when running many).
func ScenarioPredictor(p *Predictor) ScenarioOption { return func(rc *scenarioRun) { rc.pred = p } }

// ScenarioSink streams every job's telemetry into s during the sweep.
// Combined with the spec's trace_free, a sweep of any size runs with O(1)
// sample memory. RunScenario does not close the sink.
func ScenarioSink(s Sink) ScenarioOption { return func(rc *scenarioRun) { rc.sink = s } }

// ScenarioEventMode runs the sweep on the selected stepping engine.
// EventTick is byte-identical to the default loop; EventJump replays the
// scheduling plane exactly while thermal observables carry the held-input
// discretization tolerance (see EventMode). Composes with every runner
// shape — local, batched, sharded, networked.
func ScenarioEventMode(m EventMode) ScenarioOption {
	return func(rc *scenarioRun) { rc.event = m }
}

// ScenarioProgress reports per-job completion (calls are serialized).
func ScenarioProgress(fn func(done, total int)) ScenarioOption {
	return func(rc *scenarioRun) { rc.progress = fn }
}

// ScenarioWAL journals the sweep to a write-ahead log at path: the spec
// and the expanded cell table (every cell's name and pre-resolved seed)
// before the first job runs, then each completed cell's result and
// violation counters as it finishes. A run killed partway leaves a log
// that ScenarioResume continues from, re-running only the missing cells —
// final aggregates byte-identical to an uninterrupted run. A non-empty
// log at path without ScenarioResume is refused, not overwritten.
// (`ustasim -wal`; the daemon's `-state-dir` is the multi-job form.)
func ScenarioWAL(path string) ScenarioOption {
	return func(rc *scenarioRun) { rc.walPath = path }
}

// ScenarioResume continues an interrupted ScenarioWAL sweep: the journaled
// cell table is verified against the freshly expanded grid (a spec or
// seed change refuses to resume rather than mixing physics), ledgered
// cells are restored without re-running, and only the remainder executes.
// Resuming an already-complete log just restores every cell.
func ScenarioResume() ScenarioOption {
	return func(rc *scenarioRun) { rc.resume = true }
}

// RunScenario expands the spec and executes the whole grid on a fleet:
// the declarative counterpart of NewFleet + hand-built jobs. Per-job
// failures surface in the result (SweepResult.FirstError); the returned
// error covers spec, expansion and predictor-training problems. Output is
// byte-identical at any worker count.
func RunScenario(ctx context.Context, spec *ScenarioSpec, opts ...ScenarioOption) (*SweepResult, error) {
	if spec == nil {
		return nil, fmt.Errorf("repro: RunScenario(nil spec)")
	}
	rc := scenarioRun{}
	for _, opt := range opts {
		opt(&rc)
	}
	devCfg := DefaultDeviceConfig()
	if rc.device != nil {
		devCfg = *rc.device
	}
	pred := rc.pred
	if pred == nil && spec.NeedsPredictor() {
		// Self-train exactly like the experiment pipeline: the thirteen
		// benchmarks on the stock phone, REPTree on the log.
		corpusSeed := spec.Predictor.CorpusSeed
		if corpusSeed == 0 {
			corpusSeed = 42
		}
		corpus, err := core.CollectCorpusContext(ctx, devCfg,
			benchmarkLoads(corpusSeed), spec.Predictor.CorpusPerRunSec, rc.workers)
		if err != nil {
			return nil, fmt.Errorf("repro: scenario corpus: %w", err)
		}
		pred, err = core.Train(corpus, nil)
		if err != nil {
			return nil, fmt.Errorf("repro: scenario predictor: %w", err)
		}
	}
	grid, err := spec.Expand(scenario.Env{Device: &devCfg, Predictor: pred})
	if err != nil {
		return nil, err
	}
	// With ScenarioWAL the sweep is journaled: open (or resume) the log and
	// derive the plan — which cells are already ledgered, which still run.
	var jlog *durable.JobLog
	var plan *durable.Plan
	if rc.walPath != "" {
		specBytes, merr := json.Marshal(spec)
		if merr != nil {
			return nil, fmt.Errorf("repro: marshal spec for journal: %w", merr)
		}
		jlog, plan, err = durable.OpenSweep(rc.walPath, grid, specBytes, int(rc.event), rc.resume)
		if err != nil {
			return nil, err
		}
	}
	runGrid, remap := grid, []int(nil)
	if plan != nil {
		if runGrid, remap, err = plan.SubGrid(); err != nil {
			jlog.Close()
			return nil, err
		}
	}
	// Trace-free sweeps retain no per-sample history, so violation
	// statistics are accumulated on the fly: the run sink is teed into a
	// ViolationSink sized from the grid, and the stats are filled from it.
	// Sinks always index the full grid; a resume's subset run reaches them
	// through the remap adapter.
	runSink := rc.sink
	var vs *analytics.ViolationSink
	if spec.TraceFree {
		vs = analytics.NewViolationSink(grid.Limits())
		if runSink != nil {
			runSink = sink.NewTee(vs, runSink)
		} else {
			runSink = vs
		}
	}
	if remap != nil && runSink != nil {
		runSink = sink.NewRemap(runSink, remap)
	}
	fcfg := fleet.Config{
		Workers:    rc.workers,
		Seed:       spec.Seeds.Base,
		OnProgress: rc.progress,
		Sink:       runSink,
		Event:      rc.event,
	}
	if jlog != nil {
		limits := grid.Limits()
		fcfg.OnResult = func(res JobResult) {
			// Cells interrupted by cancellation re-run on resume; everything
			// else is ledgered (errors latch inside the log — a bad disk does
			// not fail the sweep, it surfaces at Close).
			if errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded) {
				return
			}
			full := res
			if remap != nil {
				full.Index = remap[res.Index]
			}
			var acc *analytics.ViolationAccum
			if vs != nil {
				a := vs.Accum(full.Index)
				acc = &a
			}
			jlog.CellDone(durable.CellEntry(full, limits[full.Index], acc))
		}
	}
	if rc.batched && rc.runner != nil {
		switch rc.runner.(type) {
		case *shard.Runner, *fleetnet.Runner, fleet.BatchRunner:
			// Compatible: shard and net runners gain batched workers below,
			// and an explicit batch runner is simply what the option asks for.
		default:
			return nil, fmt.Errorf("repro: WithBatchedRunner cannot apply to a custom ScenarioRunner of type %T; pass NewBatchRunner() (or a shard runner) as the runner, or drop one of the options", rc.runner)
		}
	}
	switch {
	case rc.runner != nil:
		fcfg.Runner = rc.runner
	case rc.sharded:
		fcfg.Runner = shard.New(rc.shards)
	case rc.batched:
		fcfg.Runner = fleet.BatchRunner{}
	}
	// A shard runner's workers must rebuild usta controllers from the same
	// predictor this sweep expanded against, or sharded and local runs
	// diverge. The caller's runner is never mutated (concurrent sweeps may
	// share one); this sweep runs on a copy carrying its own predictor —
	// and, under WithBatchedRunner, the batched-worker flag.
	if sr, ok := fcfg.Runner.(*shard.Runner); ok && (pred != nil || rc.batched) {
		srCopy := *sr
		if pred != nil {
			srCopy.Predictor = pred
		}
		if rc.batched {
			srCopy.Batched = true
		}
		fcfg.Runner = &srCopy
	}
	if nr, ok := fcfg.Runner.(*fleetnet.Runner); ok && (pred != nil || rc.batched) {
		nrCopy := *nr
		if pred != nil {
			nrCopy.Predictor = pred
		}
		if rc.batched {
			nrCopy.Batched = true
		}
		// The run executes on the copy, but the caller holds the original:
		// keep its Stats (ustasim -stats-json, recovery logs) observing
		// this run instead of staying empty forever.
		nrCopy.PublishStatsTo(nr)
		fcfg.Runner = &nrCopy
	}
	fl := fleet.New(fcfg)
	results := fl.Run(ctx, runGrid.Jobs)
	// A resume ran only the unfinished subset: land its results at their
	// full-grid indices and restore the ledgered cells around them.
	if remap != nil {
		full := make([]JobResult, len(grid.Jobs))
		for i, r := range results {
			r.Index = remap[i]
			full[r.Index] = r
		}
		plan.MergeInto(full)
		results = full
	}
	stats, err := analytics.Flatten(grid, results)
	if err != nil {
		if jlog != nil {
			jlog.Close()
		}
		return nil, err
	}
	if vs != nil {
		vs.Apply(stats)
	}
	if plan != nil {
		plan.ApplyViolations(stats)
	}
	if jlog != nil {
		// A cancelled run leaves the log non-terminal so ScenarioResume can
		// continue it; a completed run is sealed with its status. Journal
		// failures latched during the run surface here, loudly — the sweep's
		// numbers are fine, but its durability promise is not.
		if ctx.Err() == nil {
			st := durable.Status{Status: "done"}
			if ferr := fleet.FirstError(results); ferr != nil {
				st = durable.Status{Status: "failed", Error: ferr.Error()}
			}
			jlog.Finish(st)
		}
		if cerr := jlog.Close(); cerr != nil {
			return nil, fmt.Errorf("repro: sweep journal %s: %w", rc.walPath, cerr)
		}
	}
	return &SweepResult{Grid: grid, Results: results, Stats: stats}, nil
}

// benchmarkLoads returns the thirteen paper workloads as the corpus
// workload slice.
func benchmarkLoads(seed uint64) []workload.Workload {
	bs := workload.Benchmarks(seed)
	loads := make([]workload.Workload, len(bs))
	for i, b := range bs {
		loads[i] = b
	}
	return loads
}

// Streaming sink constructors (see internal/sink for semantics). All
// built-ins are safe for concurrent Accept calls and latch their first
// I/O error for Close.

// NewCSVSink streams samples as CSV rows with a leading job column.
func NewCSVSink(w io.Writer) Sink { return sink.NewCSV(w) }

// NewJSONLSink streams samples as one JSON object per line.
func NewJSONLSink(w io.Writer) Sink { return sink.NewJSONL(w) }

// NewRingSink keeps the most recent n samples across all jobs.
func NewRingSink(n int) *sink.Ring { return sink.NewRing(n) }

// NewDownsampler forwards at most one sample per job per periodSec of
// simulated time to next.
func NewDownsampler(periodSec float64, next Sink) Sink { return sink.NewDownsampler(periodSec, next) }

// NewTeeSink fans every sample out to all children.
func NewTeeSink(sinks ...Sink) Sink { return sink.NewTee(sinks...) }

// SinkFromFunc adapts a legacy func(Sample) observer into a Sink — the
// backward-compatible bridge for WithObserver-era consumers.
func SinkFromFunc(fn func(Sample)) Sink { return sink.FromFunc(fn) }

// NewViolationSink accumulates per-job time-over-limit statistics from a
// stream (limits indexed by job, typically ScenarioGrid.Limits) — the
// trace-free path to violation analytics; Apply it to SweepResult.Stats.
// RunScenario wires one automatically for trace-free specs.
func NewViolationSink(limits []float64) *ViolationSink {
	return analytics.NewViolationSink(limits)
}

// Analytics renderers: markdown and CSV forms of the sweep aggregates.

// ComfortMarkdown renders per-user comfort rows as a markdown table.
func ComfortMarkdown(rows []UserComfort) string { return analytics.ComfortMarkdown(rows) }

// WriteComfortCSV renders per-user comfort rows as CSV.
func WriteComfortCSV(w io.Writer, rows []UserComfort) error {
	return analytics.WriteComfortCSV(w, rows)
}

// DeltasMarkdown renders scheme-vs-scheme deltas as a markdown table.
func DeltasMarkdown(deltas []SchemeDelta, base, alt string) string {
	return analytics.DeltasMarkdown(deltas, base, alt)
}

// WriteDeltasCSV renders scheme-vs-scheme deltas as CSV.
func WriteDeltasCSV(w io.Writer, deltas []SchemeDelta) error {
	return analytics.WriteDeltasCSV(w, deltas)
}

// GovernorByName constructs a cpufreq governor by name against a device
// configuration's OPP table.
func GovernorByName(name string, cfg DeviceConfig) (Governor, error) {
	freqs := make([]float64, len(cfg.SoC.OPPs))
	for i, o := range cfg.SoC.OPPs {
		freqs[i] = o.FreqMHz
	}
	return governor.ByName(name, freqs)
}

// NewPhone builds a simulated handset with the stock ondemand governor,
// or nil if the configuration is invalid.
//
// Deprecated: use NewSession, which reports configuration errors and runs
// under a context. NewPhone remains for one release.
func NewPhone(cfg DeviceConfig) *Phone {
	p, err := device.New(cfg, nil)
	if err != nil {
		return nil
	}
	return p
}

// Benchmarks returns the paper's thirteen evaluation workloads.
func Benchmarks(seed uint64) []Workload {
	bs := workload.Benchmarks(seed)
	out := make([]Workload, len(bs))
	for i, b := range bs {
		out[i] = b
	}
	return out
}

// BenchmarkNames lists the thirteen workload names in Table 1 column order.
func BenchmarkNames() []string {
	return append([]string(nil), workload.BenchmarkNames...)
}

// WorkloadByName returns one of the thirteen paper workloads by name, or
// nil for unknown names.
func WorkloadByName(name string, seed uint64) Workload {
	w := workload.ByName(name, seed)
	if w == nil {
		return nil
	}
	return w
}

// CollectCorpus runs the workloads under the stock governor and returns the
// training log (maxPerRunSec <= 0 runs each in full).
//
// Deprecated: use CollectCorpusContext, which reports configuration errors,
// honors cancellation and exposes the worker-pool width. CollectCorpus
// returns nil on invalid configs.
func CollectCorpus(cfg DeviceConfig, loads []Workload, maxPerRunSec float64) []Record {
	return core.CollectCorpus(cfg, loads, maxPerRunSec)
}

// CollectCorpusContext collects the training log with per-workload runs
// fanned out across a bounded worker pool (workers <= 0: GOMAXPROCS). The
// concatenated log is identical at any worker count.
func CollectCorpusContext(ctx context.Context, cfg DeviceConfig, loads []Workload, maxPerRunSec float64, workers int) ([]Record, error) {
	return core.CollectCorpusContext(ctx, cfg, loads, maxPerRunSec, workers)
}

// TrainPredictor fits the paper's REPTree predictor on a corpus.
func TrainPredictor(corpus []Record) (*Predictor, error) {
	return core.Train(corpus, nil)
}

// TrainPredictorWith fits a predictor using a custom model factory.
func TrainPredictorWith(corpus []Record, factory func() Regressor) (*Predictor, error) {
	return core.Train(corpus, factory)
}

// NewUSTA returns the paper-configured controller (3 s period, ladder
// policy) for the given skin limit.
func NewUSTA(pred *Predictor, skinLimitC float64) *USTA {
	return core.NewUSTA(pred, skinLimitC)
}

// NewRecalibrator wraps a USTA controller with periodic predictor
// retraining from the phone's own instrumented log (see core.Recalibrator).
func NewRecalibrator(u *USTA) *core.Recalibrator { return core.NewRecalibrator(u) }

// SavePredictor serializes a trained predictor as JSON.
func SavePredictor(w io.Writer, p *Predictor) error { return core.SavePredictor(w, p) }

// LoadPredictor deserializes a predictor saved by SavePredictor.
func LoadPredictor(r io.Reader) (*Predictor, error) { return core.LoadPredictor(r) }

// StudyPopulation returns the ten study participants.
func StudyPopulation() []User { return users.StudyPopulation() }

// DefaultExperimentConfig returns the paper-scale experiment configuration.
func DefaultExperimentConfig() ExperimentConfig { return experiments.DefaultConfig() }

// NewPipeline creates an experiment pipeline (corpus and predictor are
// built lazily and cached).
func NewPipeline(cfg ExperimentConfig) *Pipeline { return experiments.NewPipeline(cfg) }

// RunFig1 reproduces Figure 1 (per-user comfort limits / user study).
func RunFig1(pl *Pipeline) *experiments.Fig1Result { return experiments.RunFig1(pl) }

// RunFig2 reproduces Figure 2 (% time over limit, 11 settings).
func RunFig2(pl *Pipeline) *experiments.Fig2Result { return experiments.RunFig2(pl) }

// RunFig3 reproduces Figure 3 (prediction-model error rates).
func RunFig3(pl *Pipeline) *experiments.Fig3Result { return experiments.RunFig3(pl) }

// RunFig4 reproduces Figure 4 (Skype traces, baseline vs USTA).
func RunFig4(pl *Pipeline) *experiments.Fig4Result { return experiments.RunFig4(pl) }

// RunFig5 reproduces Figure 5 (user ratings and preferences).
func RunFig5(pl *Pipeline) *experiments.Fig5Result { return experiments.RunFig5(pl) }

// RunTable1 reproduces Table 1 (13 workloads × baseline/USTA).
func RunTable1(pl *Pipeline) *experiments.Table1Result { return experiments.RunTable1(pl) }

// Controller clamp policies (for USTA.Policy): the paper's ladder, the
// single-step and proportional ablations, and the margin-parameterized
// generalization.
var (
	// LadderPolicy is the paper's §III-B laddered clamp.
	LadderPolicy Policy = core.LadderPolicy
	// HardPolicy clamps straight to the minimum inside the margin.
	HardPolicy Policy = core.HardPolicy
	// ProportionalPolicy scales the clamp linearly with the margin.
	ProportionalPolicy Policy = core.ProportionalPolicy
)

// MarginLadder returns a ladder policy with a custom activation margin
// (the paper's controller is MarginLadder(2)).
func MarginLadder(marginC float64) Policy { return core.MarginLadder(marginC) }

// NewREPTreeRegressor returns the paper's run-time model (REPTree).
func NewREPTreeRegressor(seed int64) Regressor { return tree.New(seed) }

// NewM5PRegressor returns an M5P model tree.
func NewM5PRegressor() Regressor { return m5p.New() }

// NewLinearRegressor returns an OLS linear regression model.
func NewLinearRegressor() Regressor { return linreg.New() }

// NewMLPRegressor returns a WEKA-default multilayer perceptron.
func NewMLPRegressor(seed int64) Regressor { return mlp.New(seed) }

// SquareWave, StaircaseRamp, RandomPhases and Idle build synthetic
// workloads for custom experiments and training-corpus diversification.
func SquareWave(seed uint64, period, duty, high, low, dur float64) Workload {
	return workload.SquareWave(seed, period, duty, high, low, dur)
}

// StaircaseRamp steps CPU demand from lo to hi across the given steps.
func StaircaseRamp(seed uint64, lo, hi float64, steps int, stepDur float64) Workload {
	return workload.StaircaseRamp(seed, lo, hi, steps, stepDur)
}

// RandomPhases builds a seeded random phase mix.
func RandomPhases(seed uint64, n int, phaseDur float64) Workload {
	return workload.RandomPhases(seed, n, phaseDur)
}

// Idle builds a screen-off idle workload.
func Idle(dur float64) Workload { return workload.Idle(dur) }

// DailyMix builds a ~100-minute mixed-usage session (idle, browsing,
// video, a call, gaming, charging) for end-to-end scenarios.
func DailyMix(seed uint64) Workload { return workload.DailyMix(seed) }
