package repro_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro"
	"repro/internal/fleet/net/chaos"
)

// TestChaosScenarioCSVIdentity is the public-API half of the chaos
// acceptance (CI's chaos-smoke runs it): the reduced Table 1 sweep
// dispatched through two worker daemons, each behind a seeded
// fault-injecting proxy, must write byte-identical aggregate CSVs to the
// in-process runner — faults may cost retries, never telemetry or cells.
func TestChaosScenarioCSVIdentity(t *testing.T) {
	spec, err := repro.LoadScenario(table1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	pred := scenarioPipeline().Predictor()

	csvs := func(label string, opts ...repro.ScenarioOption) (comfort, heat []byte) {
		t.Helper()
		res, err := repro.RunScenario(context.Background(), spec,
			append([]repro.ScenarioOption{repro.ScenarioPredictor(pred)}, opts...)...)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if err := res.FirstError(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		var cb, hb bytes.Buffer
		if err := repro.WriteComfortCSV(&cb, res.ComfortByUser()); err != nil {
			t.Fatalf("%s: comfort csv: %v", label, err)
		}
		if err := res.ViolationHeatMap().WriteCSV(&hb); err != nil {
			t.Fatalf("%s: heatmap csv: %v", label, err)
		}
		return cb.Bytes(), hb.Bytes()
	}

	refComfort, refHeat := csvs("local", repro.ScenarioWorkers(1))

	var hosts []string
	for i, seed := range []int64{101, 202} {
		backend := startNetDaemon(t, 1)
		p, err := chaos.Start(backend, chaos.NewSchedule(seed, 4), t.Logf)
		if err != nil {
			t.Fatalf("proxy %d: %v", i, err)
		}
		t.Cleanup(p.Close)
		hosts = append(hosts, p.Addr())
	}
	nr := repro.NewNetRunner(hosts)
	nr.MaxRetries = 100
	nr.ShardSize = 2
	nr.HeartbeatTimeout = 2 * time.Second
	nr.BackoffBase = 10 * time.Millisecond
	nr.BackoffMax = 100 * time.Millisecond
	nr.BreakerCooldown = 50 * time.Millisecond

	gotComfort, gotHeat := csvs("chaos net", repro.ScenarioRunner(nr))
	if !bytes.Equal(gotComfort, refComfort) {
		t.Fatalf("comfort.csv diverged under chaos:\n%s\nvs local:\n%s", gotComfort, refComfort)
	}
	if !bytes.Equal(gotHeat, refHeat) {
		t.Fatalf("heatmap.csv diverged under chaos:\n%s\nvs local:\n%s", gotHeat, refHeat)
	}
}
