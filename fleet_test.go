package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"testing"

	"repro"
)

// fleetTestJobs builds a small heterogeneous batch: three synthetic
// workloads × two schemes, with derived (not pinned) seeds so the test
// exercises the fleet's own seed derivation (Device nil and no Job.Seed).
func fleetTestJobs() []repro.Job {
	cfg := repro.DefaultDeviceConfig()
	loads := []repro.Workload{
		repro.SquareWave(1, 10, 0.5, 0.9, 0.1, 90),
		repro.StaircaseRamp(2, 0.1, 0.9, 3, 30),
		repro.RandomPhases(3, 3, 30),
	}
	var jobs []repro.Job
	for _, w := range loads {
		jobs = append(jobs,
			repro.Job{Workload: w},
			repro.Job{Workload: w, Governor: func() repro.Governor {
				g, err := repro.GovernorByName("conservative", cfg)
				if err != nil {
					panic(err)
				}
				return g
			}},
		)
	}
	return jobs
}

// marshalResults canonicalizes JobResults for byte-level comparison.
func marshalResults(t *testing.T, results []repro.JobResult) []byte {
	t.Helper()
	type row struct {
		Index    int
		Name     string
		SeedUsed int64
		Err      string
		Result   *repro.RunResult
	}
	rows := make([]row, len(results))
	for i, r := range results {
		rows[i] = row{Index: r.Index, Name: r.Name, SeedUsed: r.SeedUsed, Result: r.Result}
		if r.Err != nil {
			rows[i].Err = r.Err.Error()
		}
	}
	b, err := json.Marshal(rows)
	if err != nil {
		t.Fatalf("marshal results: %v", err)
	}
	return b
}

// TestFleetDeterministicAcrossWorkerCounts is the heart of the fleet
// contract: N workers must produce byte-identical results to 1 worker,
// because per-job seeds derive from job position, never from scheduling.
func TestFleetDeterministicAcrossWorkerCounts(t *testing.T) {
	ctx := context.Background()
	ref := marshalResults(t, repro.NewFleet(repro.FleetConfig{Workers: 1, Seed: 42}).Run(ctx, fleetTestJobs()))
	for _, workers := range []int{2, 8} {
		got := marshalResults(t, repro.NewFleet(repro.FleetConfig{Workers: workers, Seed: 42}).Run(ctx, fleetTestJobs()))
		if !bytes.Equal(ref, got) {
			t.Fatalf("Workers=%d results differ from Workers=1 (%d vs %d bytes)", workers, len(got), len(ref))
		}
	}
}

// TestFleetSeedPrecedence: Job.Seed pins, else a non-zero Device.Seed is
// honored (Session semantics), else the fleet derives from the job index.
func TestFleetSeedPrecedence(t *testing.T) {
	cfg := repro.DefaultDeviceConfig()
	cfg.Seed = 77
	jobs := []repro.Job{
		{Workload: repro.Idle(30), Seed: 5, Device: &cfg}, // explicit wins
		{Workload: repro.Idle(30), Device: &cfg},          // config honored
		{Workload: repro.Idle(30)},                        // derived
	}
	results := repro.NewFleet(repro.FleetConfig{Workers: 1, Seed: 42}).Run(context.Background(), jobs)
	if got := results[0].SeedUsed; got != 5 {
		t.Fatalf("explicit Job.Seed: used %d, want 5", got)
	}
	if got := results[1].SeedUsed; got != 77 {
		t.Fatalf("Device.Seed: used %d, want 77", got)
	}
	if got := results[2].SeedUsed; got == 0 || got == 77 || got == 5 {
		t.Fatalf("derived seed: got %d, want a derived value", got)
	}
}

// TestFleetDerivesDistinctSeedsForDefaultDevices: nil-Device jobs must get
// per-job derived seeds (not the default config's own seed), so a
// population's sensor-noise streams are independent and FleetConfig.Seed
// actually steers them.
func TestFleetDerivesDistinctSeedsForDefaultDevices(t *testing.T) {
	ctx := context.Background()
	jobs := []repro.Job{
		{Workload: repro.Idle(30)},
		{Workload: repro.Idle(30)},
		{Workload: repro.Idle(30)},
	}
	a := repro.NewFleet(repro.FleetConfig{Workers: 1, Seed: 42}).Run(ctx, jobs)
	seen := map[int64]bool{}
	for _, r := range a {
		if r.SeedUsed == 0 || r.SeedUsed == 1 {
			t.Fatalf("job %d used seed %d; want a derived seed, not the default config's", r.Index, r.SeedUsed)
		}
		if seen[r.SeedUsed] {
			t.Fatalf("seed %d reused across jobs", r.SeedUsed)
		}
		seen[r.SeedUsed] = true
	}
	b := repro.NewFleet(repro.FleetConfig{Workers: 1, Seed: 43}).Run(ctx, jobs)
	if a[0].SeedUsed == b[0].SeedUsed {
		t.Fatal("changing FleetConfig.Seed did not change derived seeds")
	}
}

// TestFleetPerJobErrors: a broken job fails alone; its neighbors run.
func TestFleetPerJobErrors(t *testing.T) {
	bad := repro.DefaultDeviceConfig()
	bad.GovernorPeriodSec = bad.StepSec / 4 // invalid: period below step
	jobs := []repro.Job{
		{Workload: repro.Idle(60)},
		{Workload: repro.Idle(60), Device: &bad},
		{}, // no workload
	}
	results := repro.NewFleet(repro.FleetConfig{Workers: 2}).Run(context.Background(), jobs)
	if results[0].Err != nil || results[0].Result == nil {
		t.Fatalf("healthy job failed: %v", results[0].Err)
	}
	if results[1].Err == nil {
		t.Fatal("invalid device config should fail its job")
	}
	if results[2].Err == nil {
		t.Fatal("missing workload should fail its job")
	}
	if results[1].Result != nil || results[2].Result != nil {
		t.Fatal("failed jobs should carry no result")
	}
}

// TestFleetTraceFreeAggregatesIdentical is the trace-free contract: a
// population sweep that only consumes aggregates must get bit-identical
// numbers with and without trace retention — trace-free changes memory, not
// physics.
func TestFleetTraceFreeAggregatesIdentical(t *testing.T) {
	ctx := context.Background()
	traced := repro.NewFleet(repro.FleetConfig{Workers: 2, Seed: 42}).Run(ctx, fleetTestJobs())
	free := fleetTestJobs()
	for i := range free {
		free[i].TraceFree = true
	}
	results := repro.NewFleet(repro.FleetConfig{Workers: 2, Seed: 42}).Run(ctx, free)
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.Result.Trace != nil || r.Result.Records != nil {
			t.Fatalf("job %d: trace-free run retained history", i)
		}
		ref := traced[i].Result
		if r.Result.MaxSkinC != ref.MaxSkinC {
			t.Fatalf("job %d: MaxSkinC %v != traced %v", i, r.Result.MaxSkinC, ref.MaxSkinC)
		}
		if r.Result.AvgFreqMHz != ref.AvgFreqMHz {
			t.Fatalf("job %d: AvgFreqMHz %v != traced %v", i, r.Result.AvgFreqMHz, ref.AvgFreqMHz)
		}
		if r.Result.EnergyJ != ref.EnergyJ || r.Result.MaxDieC != ref.MaxDieC {
			t.Fatalf("job %d: aggregates diverged between traced and trace-free runs", i)
		}
		if ref.Trace == nil || ref.Trace.Len() == 0 {
			t.Fatalf("job %d: traced reference lost its trace", i)
		}
	}
}

// TestSessionTraceFreeOption: the session-level opt-in matches the fleet's,
// and observers still stream.
func TestSessionTraceFreeOption(t *testing.T) {
	samples := 0
	s, err := repro.NewSession(
		repro.WithSeed(9),
		repro.WithTraceFree(),
		repro.WithObserver(func(repro.Sample) { samples++ }),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(context.Background(), repro.Idle(30))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil || res.Records != nil {
		t.Fatal("trace-free session retained history")
	}
	if samples == 0 {
		t.Fatal("observer did not fire in trace-free mode")
	}
	if res.MaxSkinC == 0 || res.DurSec != 30 {
		t.Fatalf("aggregates missing: %+v", res)
	}
}

// TestFleetCancellation: cancelling the context marks unfinished jobs with
// the context error instead of hanging or aborting the batch.
func TestFleetCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the batch starts
	jobs := fleetTestJobs()
	results := repro.NewFleet(repro.FleetConfig{Workers: 2}).Run(ctx, jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for _, r := range results {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("job %d err = %v, want context.Canceled", r.Index, r.Err)
		}
	}
}

// TestFleetProgress: OnProgress reports every completion exactly once,
// serialized, ending at (total, total).
func TestFleetProgress(t *testing.T) {
	jobs := fleetTestJobs()
	var calls []int
	fl := repro.NewFleet(repro.FleetConfig{
		Workers:    4,
		OnProgress: func(done, total int) { calls = append(calls, done*100+total) },
	})
	fl.Run(context.Background(), jobs)
	if len(calls) != len(jobs) {
		t.Fatalf("OnProgress called %d times, want %d", len(calls), len(jobs))
	}
	for i, c := range calls {
		if c != (i+1)*100+len(jobs) {
			t.Fatalf("call %d = %d, want done=%d total=%d", i, c, i+1, len(jobs))
		}
	}
}

// TestFleetResultsInSubmissionOrder: results land at their job's index
// with echoed metadata, regardless of completion order.
func TestFleetResultsInSubmissionOrder(t *testing.T) {
	var jobs []repro.Job
	for i := 0; i < 6; i++ {
		jobs = append(jobs, repro.Job{
			Name: fmt.Sprintf("job-%d", i),
			// Mixed durations so completion order differs from submission.
			Workload: repro.Idle(float64(30 + 60*(i%3))),
		})
	}
	results := repro.NewFleet(repro.FleetConfig{Workers: 3}).Run(context.Background(), jobs)
	for i, r := range results {
		if r.Index != i || r.Name != fmt.Sprintf("job-%d", i) {
			t.Fatalf("result %d carries index %d name %q", i, r.Index, r.Name)
		}
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if r.SeedUsed == 0 {
			t.Fatalf("job %d: derived seed should never be zero", i)
		}
	}
}
