package repro_test

import (
	"context"
	"os"
	"strings"
	"sync"
	"testing"

	"repro"
)

// TestMain lets the test binary double as a shard worker: NewShardRunner's
// default command re-executes the current binary, and ShardWorkerMain
// serves the shard instead of running the tests.
func TestMain(m *testing.M) {
	repro.ShardWorkerMain()
	os.Exit(m.Run())
}

// countingSink tallies per-job sample counts and skin sums — an
// order-insensitive, bit-exact fingerprint of the telemetry stream
// (per-job delivery order is FIFO on both the in-process and the
// cross-process path, so the float sums must match exactly).
type countingSink struct {
	mu     sync.Mutex
	counts map[int]int
	sums   map[int]float64
}

func newCountingSink() *countingSink {
	return &countingSink{counts: map[int]int{}, sums: map[int]float64{}}
}

func (c *countingSink) Accept(job repro.SinkJobID, s repro.Sample) {
	c.mu.Lock()
	c.counts[int(job)]++
	c.sums[int(job)] += s.SkinC
	c.mu.Unlock()
}

func (c *countingSink) Close() error { return nil }

// TestShardRunnerMatchesLocalTable1 is the sharded-fleet acceptance test:
// the paper's Table 1 scenario must produce byte-identical analytics cells
// under the in-process runner (workers 1 and GOMAXPROCS) and the
// multi-process shard runner (2 and 4 worker subprocesses), with every
// job's telemetry delivered across the process boundary.
func TestShardRunnerMatchesLocalTable1(t *testing.T) {
	spec, err := repro.LoadScenario(table1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	pred := scenarioPipeline().Predictor()

	type cell struct {
		name                string
		seed                int64
		maxSkinC, maxScrC   float64
		avgFreqMHz, energyJ float64
		workDone, slowdown  float64
	}
	run := func(label string, opt repro.ScenarioOption) ([]cell, *countingSink) {
		t.Helper()
		cs := newCountingSink()
		res, err := repro.RunScenario(context.Background(), spec,
			repro.ScenarioPredictor(pred), repro.ScenarioSink(cs), opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if err := res.FirstError(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		cells := make([]cell, len(res.Results))
		for i, jr := range res.Results {
			r := jr.Result
			cells[i] = cell{
				name: jr.Name, seed: jr.SeedUsed,
				maxSkinC: r.MaxSkinC, maxScrC: r.MaxScreenC,
				avgFreqMHz: r.AvgFreqMHz, energyJ: r.EnergyJ,
				workDone: r.WorkDone, slowdown: r.Slowdown(),
			}
		}
		return cells, cs
	}

	ref, refSink := run("local workers=1", repro.ScenarioWorkers(1))
	runs := []struct {
		label string
		opt   repro.ScenarioOption
	}{
		{"local workers=GOMAXPROCS", repro.ScenarioWorkers(0)},
		{"shard procs=2", repro.ScenarioShards(2)},
		{"shard procs=4", repro.ScenarioShards(4)},
	}
	for _, rc := range runs {
		got, gotSink := run(rc.label, rc.opt)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: cell %d diverged from local workers=1:\ngot  %+v\nwant %+v",
					rc.label, i, got[i], ref[i])
			}
		}
		for i := range ref {
			if gotSink.counts[i] != refSink.counts[i] || gotSink.sums[i] != refSink.sums[i] {
				t.Fatalf("%s: job %d telemetry diverged: %d samples / sum %v, local %d / %v",
					rc.label, i, gotSink.counts[i], gotSink.sums[i], refSink.counts[i], refSink.sums[i])
			}
			if refSink.counts[i] == 0 {
				t.Fatalf("job %d delivered no samples", i)
			}
		}
	}
}

// TestShardRunnerRequiresWorkerHook documents the self-exec contract: a
// spec-less hand-built job cannot shard, and the error says why.
func TestShardRunnerSpeclessJobFailsDescriptively(t *testing.T) {
	jobs := []repro.Job{{Workload: repro.WorkloadByName("skype", 1), DurSec: 10}}
	results := repro.NewShardRunner(1).Run(context.Background(), repro.FleetConfig{Seed: 1}, jobs)
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "no serializable spec") {
		t.Fatalf("err = %v, want a descriptive spec error", results[0].Err)
	}
}
