// Videocall reproduces the paper's headline scenario (Figure 4): a
// 30-minute Skype video call under the stock ondemand governor and under
// USTA at the default 37 °C limit, with ASCII temperature traces. The
// pipeline underneath runs both calls concurrently on the fleet engine.
//
//	go run ./examples/videocall
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := repro.DefaultExperimentConfig()
	cfg.CorpusPerRunSec = 1200 // keep the demo quick; 0 = paper-scale corpus
	cfg.Workers = 0            // 0 = one simulation worker per core
	pl := repro.NewPipeline(cfg)

	fmt.Println("training predictor and running the two 30-minute calls...")
	res := repro.RunFig4(pl)
	fmt.Println(res)

	// The detail behind the trace: how USTA's laddered clamp spent the
	// call. max_level 11 means free-running; 0 means pinned at 384 MHz.
	levels := res.USTA.Trace.Lookup("max_level").Values
	counts := map[int]int{}
	for _, l := range levels {
		counts[int(l)]++
	}
	fmt.Println("USTA clamp residency (DVFS max level -> share of call):")
	for lvl := 0; lvl < 12; lvl++ {
		if n := counts[lvl]; n > 0 {
			fmt.Printf("  L%-2d %5.1f%%\n", lvl, float64(n)/float64(len(levels))*100)
		}
	}
}
