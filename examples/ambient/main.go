// Ambient explores USTA on a hot day: the same video call at 25 °C office
// ambient and 35 °C outdoor ambient. A skin-temperature limit is relative
// to the person, not the weather — so at high ambient USTA must clamp much
// earlier and harder, and at some point the limit becomes physically
// unreachable (board power alone exceeds it). The example also shows the
// online recalibrator adapting the predictor to the shifted conditions.
//
//	go run ./examples/ambient
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	ctx := context.Background()
	baseCfg := repro.DefaultDeviceConfig()

	fmt.Println("training predictor at 25 °C ambient...")
	corpus, err := repro.CollectCorpusContext(ctx, baseCfg, repro.Benchmarks(1), 1200, 0)
	if err != nil {
		fmt.Println("corpus:", err)
		return
	}
	pred, err := repro.TrainPredictor(corpus)
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	call := repro.WorkloadByName("skype", 7)
	run := func(ambient float64, recal bool) *repro.RunResult {
		u := repro.NewUSTA(pred, repro.DefaultLimitC)
		var ctrl repro.Controller = u
		if recal {
			ctrl = repro.NewRecalibrator(u)
		}
		session, err := repro.NewSession(
			repro.WithDevice(baseCfg),
			repro.WithAmbientC(ambient),
			repro.WithController(ctrl),
		)
		if err != nil {
			panic(err) // static options above; cannot fail
		}
		res, err := session.RunFor(ctx, call, 1200)
		if err != nil {
			panic(err)
		}
		return res
	}

	fmt.Printf("\n%-28s %12s %10s\n", "scenario (USTA @37 °C)", "peak skin", "avg freq")
	office := run(25, false)
	fmt.Printf("%-28s %9.1f °C %6.2f GHz\n", "office, 25 °C ambient", office.MaxSkinC, office.AvgFreqMHz/1000)
	outdoor := run(35, false)
	fmt.Printf("%-28s %9.1f °C %6.2f GHz\n", "hot day, 35 °C ambient", outdoor.MaxSkinC, outdoor.AvgFreqMHz/1000)
	recal := run(35, true)
	fmt.Printf("%-28s %9.1f °C %6.2f GHz\n", "hot day + recalibration", recal.MaxSkinC, recal.AvgFreqMHz/1000)

	fmt.Println("\nat 35 °C ambient the 37 °C limit is only 2 °C of headroom: USTA pins the")
	fmt.Println("minimum frequency almost immediately, and board-level power alone can keep")
	fmt.Println("the cover above the limit — frequency scaling has bounded authority.")
}
