// Example sweep: run a declarative scenario file through the fleet and
// reduce it to analytics — the streaming, O(1)-memory way to evaluate the
// paper's grid (and any grid you can write down) without hand-building
// jobs in Go.
//
//	go run ./examples/sweep                 # the bundled ambient sweep
//	go run ./examples/sweep table1.json     # the paper's Table 1 grid
package main

import (
	"context"
	"fmt"
	"os"

	"repro"
)

func main() {
	// Either load a scenario file...
	if len(os.Args) > 1 {
		spec, err := repro.LoadScenario(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		run(spec)
		return
	}

	// ...or build the spec in Go: the whole study population on a Skype
	// call across four ambients under per-user USTA, trace-free with the
	// telemetry streamed to JSONL instead of buffered.
	spec := &repro.ScenarioSpec{
		Version:    1,
		Name:       "ambient-population-sweep",
		Workloads:  []string{"skype"},
		Population: []string{"all"},
		AmbientsC:  []float64{15, 25, 35, 45},
		Schemes: []repro.ScenarioScheme{
			{Name: "baseline"},
			{Name: "usta", Controller: "usta"},
		},
		TraceFree: true,
	}
	run(spec)
}

func run(spec *repro.ScenarioSpec) {
	out, err := os.Create("samples.jsonl")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer out.Close()
	js := repro.NewJSONLSink(out)
	defer js.Close()

	res, err := repro.RunScenario(context.Background(), spec,
		repro.ScenarioSink(js),
		repro.ScenarioProgress(func(done, total int) {
			fmt.Printf("\r%d/%d jobs", done, total)
		}),
	)
	fmt.Println()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := res.FirstError(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println("Per-user comfort:")
	fmt.Println(repro.ComfortMarkdown(res.ComfortByUser()))
	if h := res.ViolationHeatMap(); len(h.Rows)*len(h.Cols) > 1 {
		fmt.Println("Violation heat map (ambient × limit, mean time over limit):")
		fmt.Println(h.Markdown())
	}
	if len(spec.Schemes) == 2 {
		deltas, err := res.CompareSchemes("baseline", "usta")
		if err == nil {
			fmt.Println(repro.DeltasMarkdown(deltas, "baseline", "usta"))
		}
	}
	fmt.Println("telemetry streamed to samples.jsonl")
}
