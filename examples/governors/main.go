// Governors compares the thermal and performance behaviour of the standard
// cpufreq policies against USTA on a sustained gaming workload — the
// trade-off space the paper's controller navigates. All five runs execute
// as one fleet batch, each job building its own governor via its factory.
//
//	go run ./examples/governors
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	ctx := context.Background()
	cfg := repro.DefaultDeviceConfig()
	game := repro.WorkloadByName("game", 5)

	fmt.Println("training predictor...")
	corpus, err := repro.CollectCorpusContext(ctx, cfg, repro.Benchmarks(1), 1200, 0)
	if err != nil {
		fmt.Println("corpus:", err)
		return
	}
	pred, err := repro.TrainPredictor(corpus)
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	govJob := func(name string) repro.Job {
		return repro.Job{
			Name:     name,
			Workload: game,
			Device:   &cfg,
			DurSec:   900,
			Seed:     cfg.Seed,
			Governor: func() repro.Governor {
				g, err := repro.GovernorByName(name, cfg)
				if err != nil {
					panic(err) // names below are all known
				}
				return g
			},
		}
	}
	usta := govJob("ondemand")
	usta.Name = "ondemand+usta"
	usta.Controller = func(repro.User) repro.Controller { return repro.NewUSTA(pred, repro.DefaultLimitC) }

	jobs := []repro.Job{
		govJob("performance"),
		govJob("ondemand"),
		govJob("conservative"),
		govJob("powersave"),
		usta,
	}

	fmt.Printf("\n%-15s %12s %10s %12s %10s\n", "governor", "peak skin", "avg freq", "work served", "energy")
	for _, jr := range repro.NewFleet(repro.FleetConfig{}).Run(ctx, jobs) {
		if jr.Err != nil {
			fmt.Println(jr.Name+":", jr.Err)
			return
		}
		res := jr.Result
		fmt.Printf("%-15s %9.1f °C %6.2f GHz %11.1f%% %7.0f J\n",
			jr.Name, res.MaxSkinC, res.AvgFreqMHz/1000, (1-res.Slowdown())*100, res.EnergyJ)
	}
	fmt.Println("\nUSTA lands between ondemand (hot, fast) and powersave (cool, slow):")
	fmt.Println("full speed until the skin approaches the limit, then just enough clamping to hold it.")
}
