// Governors compares the thermal and performance behaviour of the standard
// cpufreq policies against USTA on a sustained gaming workload — the
// trade-off space the paper's controller navigates.
//
//	go run ./examples/governors
package main

import (
	"fmt"

	"repro"
	"repro/internal/device"
	"repro/internal/governor"
)

func main() {
	cfg := repro.DefaultDeviceConfig()
	game := repro.WorkloadByName("game", 5)

	fmt.Println("training predictor...")
	corpus := repro.CollectCorpus(cfg, repro.Benchmarks(1), 1200)
	pred, err := repro.TrainPredictor(corpus)
	if err != nil {
		panic(err)
	}

	freqs := make([]float64, len(cfg.SoC.OPPs))
	for i, o := range cfg.SoC.OPPs {
		freqs[i] = o.FreqMHz
	}
	type entry struct {
		name string
		run  func() *repro.RunResult
	}
	entries := []entry{
		{"performance", func() *repro.RunResult {
			return device.MustNew(cfg, &governor.Performance{NumLevels: len(freqs)}).Run(game, 900)
		}},
		{"ondemand", func() *repro.RunResult {
			return device.MustNew(cfg, governor.NewOndemand(freqs)).Run(game, 900)
		}},
		{"conservative", func() *repro.RunResult {
			return device.MustNew(cfg, governor.NewConservative(len(freqs))).Run(game, 900)
		}},
		{"powersave", func() *repro.RunResult {
			return device.MustNew(cfg, &governor.Powersave{}).Run(game, 900)
		}},
		{"ondemand+usta", func() *repro.RunResult {
			p := repro.NewPhone(cfg)
			p.SetController(repro.NewUSTA(pred, repro.DefaultLimitC))
			return p.Run(game, 900)
		}},
	}

	fmt.Printf("\n%-15s %12s %10s %12s %10s\n", "governor", "peak skin", "avg freq", "work served", "energy")
	for _, e := range entries {
		res := e.run()
		fmt.Printf("%-15s %9.1f °C %6.2f GHz %11.1f%% %7.0f J\n",
			e.name, res.MaxSkinC, res.AvgFreqMHz/1000, (1-res.Slowdown())*100, res.EnergyJ)
	}
	fmt.Println("\nUSTA lands between ondemand (hot, fast) and powersave (cool, slow):")
	fmt.Println("full speed until the skin approaches the limit, then just enough clamping to hold it.")
}
