// Calibration walks through the paper's user-study flow for a single new
// user: discover the personal comfort limit with the hardware-stressor
// session, then run USTA personalized to that limit and show what it
// changes compared to the population default.
//
//	go run ./examples/calibration
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	ctx := context.Background()
	cfg := repro.DefaultDeviceConfig()

	// Phase 1 — discomfort calibration session. The new user holds the
	// phone while the AnTuTu Tester stressor runs; they stop the session
	// the moment it becomes uncomfortable. Here we simulate a user whose
	// tolerance sits at 35.5 °C, using the observer to catch the crossing
	// live — exactly how the real study worked — and cancelling the rest
	// of the session once discomfort is reported.
	const trueComfortLimit = 35.5
	stressor := repro.WorkloadByName("antutu-tester", 3)
	sessCtx, reportDiscomfort := context.WithCancel(ctx)
	reported := 0.0
	session, err := repro.NewSession(
		repro.WithDevice(cfg),
		repro.WithObserver(func(s repro.Sample) {
			if reported == 0 && s.SkinC > trueComfortLimit {
				reported = s.TimeSec
				reportDiscomfort()
			}
		}),
	)
	if err != nil {
		fmt.Println("session:", err)
		return
	}
	if _, err := session.Run(sessCtx, stressor); err != nil && reported == 0 {
		fmt.Println("calibration run:", err)
		return
	}
	reportDiscomfort()
	fmt.Printf("calibration session: user reported discomfort at t=%.0f s (skin %.1f °C)\n",
		reported, trueComfortLimit)

	// Phase 2 — train the predictor once (shared across all users).
	fmt.Println("training predictor...")
	corpus, err := repro.CollectCorpusContext(ctx, cfg, repro.Benchmarks(1), 1200, 0)
	if err != nil {
		fmt.Println("corpus:", err)
		return
	}
	pred, err := repro.TrainPredictor(corpus)
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	// Phase 3 — personalized vs default USTA on a gaming session, run
	// concurrently as a two-job fleet.
	game := repro.WorkloadByName("game", 9)
	jobFor := func(name string, limit float64) repro.Job {
		return repro.Job{
			Name:     name,
			Workload: game,
			Device:   &cfg,
			DurSec:   900,
			Seed:     cfg.Seed,
			Controller: func(repro.User) repro.Controller {
				return repro.NewUSTA(pred, limit)
			},
		}
	}
	results := repro.NewFleet(repro.FleetConfig{}).Run(ctx, []repro.Job{
		jobFor("usta(personal 35.5)", trueComfortLimit),
		jobFor("usta(default 37.0)", repro.DefaultLimitC),
	})

	fmt.Printf("\n%-22s %12s %10s\n", "controller", "peak skin", "avg freq")
	for _, jr := range results {
		if jr.Err != nil {
			fmt.Println(jr.Name+":", jr.Err)
			return
		}
		fmt.Printf("%-22s %9.1f °C %6.2f GHz\n", jr.Name, jr.Result.MaxSkinC, jr.Result.AvgFreqMHz/1000)
	}
	fmt.Println("\nthe default limit would let the phone run past this user's comfort point;")
	fmt.Println("personalization trades a little frequency for staying inside it.")
}
