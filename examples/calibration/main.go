// Calibration walks through the paper's user-study flow for a single new
// user: discover the personal comfort limit with the hardware-stressor
// session, then run USTA personalized to that limit and show what it
// changes compared to the population default.
//
//	go run ./examples/calibration
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := repro.DefaultDeviceConfig()

	// Phase 1 — discomfort calibration session. The new user holds the
	// phone while the AnTuTu Tester stressor runs; they stop the session
	// the moment it becomes uncomfortable. Here we simulate a user whose
	// tolerance sits at 35.5 °C.
	const trueComfortLimit = 35.5
	stressor := repro.WorkloadByName("antutu-tester", 3)
	phone := repro.NewPhone(cfg)
	res := phone.Run(stressor, 0)

	skin := res.Trace.Lookup("skin_c").Values
	times := res.Trace.TimeSec
	reported := 0.0
	for i, v := range skin {
		if v > trueComfortLimit {
			reported = times[i]
			break
		}
	}
	fmt.Printf("calibration session: user reported discomfort at t=%.0f s (skin %.1f °C)\n",
		reported, trueComfortLimit)

	// Phase 2 — train the predictor once (shared across all users).
	fmt.Println("training predictor...")
	corpus := repro.CollectCorpus(cfg, repro.Benchmarks(1), 1200)
	pred, err := repro.TrainPredictor(corpus)
	if err != nil {
		panic(err)
	}

	// Phase 3 — personalized vs default USTA on a gaming session.
	game := repro.WorkloadByName("game", 9)
	runWith := func(limit float64) *repro.RunResult {
		p := repro.NewPhone(cfg)
		p.SetController(repro.NewUSTA(pred, limit))
		return p.Run(game, 900)
	}
	personalized := runWith(trueComfortLimit)
	def := runWith(repro.DefaultLimitC)

	fmt.Printf("\n%-22s %12s %10s\n", "controller", "peak skin", "avg freq")
	fmt.Printf("%-22s %9.1f °C %6.2f GHz\n", "usta(personal 35.5)", personalized.MaxSkinC, personalized.AvgFreqMHz/1000)
	fmt.Printf("%-22s %9.1f °C %6.2f GHz\n", "usta(default 37.0)", def.MaxSkinC, def.AvgFreqMHz/1000)
	fmt.Println("\nthe default limit would let the phone run past this user's comfort point;")
	fmt.Println("personalization trades a little frequency for staying inside it.")
}
