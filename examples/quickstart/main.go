// Quickstart: train the skin-temperature predictor, build a USTA session
// with the options API, and compare a Skype video call against the stock
// ondemand governor — both runs executed concurrently by a two-job fleet.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	ctx := context.Background()
	cfg := repro.DefaultDeviceConfig()

	// 1. Collect a training corpus: the evaluation workloads executed under
	// the stock governor on the thermistor-instrumented phone, one worker
	// per core. (20 minutes per workload keeps this quick while still
	// covering the hot regime.)
	fmt.Println("collecting training corpus...")
	corpus, err := repro.CollectCorpusContext(ctx, cfg, repro.Benchmarks(1), 1200, 0)
	if err != nil {
		fmt.Println("corpus:", err)
		return
	}
	fmt.Printf("  %d logged records\n", len(corpus))

	// 2. Train the run-time predictor (REPTree, as in the paper).
	pred, err := repro.TrainPredictor(corpus)
	if err != nil {
		fmt.Println("train:", err)
		return
	}

	// 3. Run the 10-minute call under both schemes as one fleet batch: the
	// baseline job is a stock phone, the USTA job attaches the controller
	// through its factory. Job seeds are pinned, so the comparison is
	// reproducible at any worker count.
	call := repro.WorkloadByName("skype", 7)
	fl := repro.NewFleet(repro.FleetConfig{})
	results := fl.Run(ctx, []repro.Job{
		{Name: "ondemand", Workload: call, Device: &cfg, DurSec: 600, Seed: 1},
		{Name: "usta", Workload: call, Device: &cfg, DurSec: 600, Seed: 1,
			Controller: func(repro.User) repro.Controller { return repro.NewUSTA(pred, repro.DefaultLimitC) }},
	})
	for _, jr := range results {
		if jr.Err != nil {
			fmt.Println(jr.Name+":", jr.Err)
			return
		}
	}
	baseline, usta := results[0].Result, results[1].Result

	fmt.Printf("\n%-10s %12s %12s %10s\n", "scheme", "peak skin", "peak screen", "avg freq")
	fmt.Printf("%-10s %9.1f °C %9.1f °C %6.2f GHz\n",
		"ondemand", baseline.MaxSkinC, baseline.MaxScreenC, baseline.AvgFreqMHz/1000)
	fmt.Printf("%-10s %9.1f °C %9.1f °C %6.2f GHz\n",
		"usta", usta.MaxSkinC, usta.MaxScreenC, usta.AvgFreqMHz/1000)
	fmt.Printf("\nUSTA kept the back cover %.1f °C cooler at a %.0f%% lower average frequency.\n",
		baseline.MaxSkinC-usta.MaxSkinC,
		(1-usta.AvgFreqMHz/baseline.AvgFreqMHz)*100)

	// 4. The same USTA scheme as a single Session, streaming telemetry: the
	// observer fires once per trace second instead of waiting for the
	// aggregate result.
	fmt.Println("\nstreaming the first minutes of the USTA call:")
	printed := 0
	session, err := repro.NewSession(
		repro.WithDevice(cfg),
		repro.WithSeed(1),
		repro.WithController(repro.NewUSTA(pred, repro.DefaultLimitC)),
		repro.WithObserver(func(s repro.Sample) {
			if int(s.TimeSec)%60 == 0 && printed < 5 {
				fmt.Printf("  t=%3.0fs skin %.1f °C at %.0f MHz (clamp L%d)\n",
					s.TimeSec, s.SkinC, s.FreqMHz, s.MaxLevel)
				printed++
			}
		}),
	)
	if err != nil {
		fmt.Println("session:", err)
		return
	}
	if _, err := session.RunFor(ctx, call, 300); err != nil {
		fmt.Println("run:", err)
	}
}
