// Quickstart: train the skin-temperature predictor, attach USTA to a
// simulated phone, and compare a Skype video call against the stock
// ondemand governor.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
)

func main() {
	cfg := repro.DefaultDeviceConfig()

	// 1. Collect a training corpus: the evaluation workloads executed under
	// the stock governor on the thermistor-instrumented phone. (20 minutes
	// per workload keeps this quick while still covering the hot regime.)
	fmt.Println("collecting training corpus...")
	corpus := repro.CollectCorpus(cfg, repro.Benchmarks(1), 1200)
	fmt.Printf("  %d logged records\n", len(corpus))

	// 2. Train the run-time predictor (REPTree, as in the paper).
	pred, err := repro.TrainPredictor(corpus)
	if err != nil {
		panic(err)
	}

	// 3. Run a 10-minute Skype call under the baseline governor...
	call := repro.WorkloadByName("skype", 7)
	baseline := repro.NewPhone(cfg).Run(call, 600)

	// ...and under USTA configured for the default user (37 °C).
	phone := repro.NewPhone(cfg)
	phone.SetController(repro.NewUSTA(pred, repro.DefaultLimitC))
	usta := phone.Run(call, 600)

	fmt.Printf("\n%-10s %12s %12s %10s\n", "scheme", "peak skin", "peak screen", "avg freq")
	fmt.Printf("%-10s %9.1f °C %9.1f °C %6.2f GHz\n",
		"ondemand", baseline.MaxSkinC, baseline.MaxScreenC, baseline.AvgFreqMHz/1000)
	fmt.Printf("%-10s %9.1f °C %9.1f °C %6.2f GHz\n",
		"usta", usta.MaxSkinC, usta.MaxScreenC, usta.AvgFreqMHz/1000)
	fmt.Printf("\nUSTA kept the back cover %.1f °C cooler at a %.0f%% lower average frequency.\n",
		baseline.MaxSkinC-usta.MaxSkinC,
		(1-usta.AvgFreqMHz/baseline.AvgFreqMHz)*100)
}
