// Command benchdiff compares two `go test -bench` outputs — a committed
// baseline (BENCH_seed.json) and a fresh run (BENCH_pr.json) — and reports
// throughput regressions. CI runs it warn-only so noisy runners never
// block a merge, but the 950 jobs/s fleet-engine gain of the perf PRs
// cannot regress silently:
//
//	benchdiff BENCH_seed.json BENCH_pr.json
//	benchdiff -threshold 0.3 -strict old.txt new.txt   # exit 1 on regression
//	benchdiff -fail-on-regress 15 -match BenchmarkFleetRun old.txt new.txt
//
// -fail-on-regress puts a hard gate behind the warn-only default: any
// benchmark whose name contains -match (empty: all) and regresses more
// than the given percentage fails the run with exit 1, independent of
// -strict. CI uses it to gate fleet-engine throughput while the rest of
// the suite stays warn-only.
//
// Only time (ns/op) and rate (.../sec, .../s) metrics are compared; domain
// metrics (peak-C, error rates) are anchored by tests, not by the diff.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// metrics maps "benchmark name" → "unit" → value.
type metrics map[string]map[string]float64

func main() {
	threshold := flag.Float64("threshold", 0.25, "relative regression that triggers a warning (0.25 = 25%)")
	strict := flag.Bool("strict", false, "exit non-zero when a regression exceeds the threshold")
	failPct := flag.Float64("fail-on-regress", 0, "hard gate in percent: exit 1 when a benchmark matching -match regresses more than this (0 = warn-only)")
	match := flag.String("match", "", "comma-separated substrings restricting which benchmarks -fail-on-regress gates (empty = all)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold f] [-strict] [-fail-on-regress pct [-match substr]] SEED PR")
		os.Exit(2)
	}
	if *failPct < 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -fail-on-regress must be >= 0")
		os.Exit(2)
	}
	seed, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	pr, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	gate := gateSpec{pct: *failPct, match: *match}
	regressions, gated := compare(seed, pr, *threshold, gate, os.Stdout)
	if gated > 0 {
		fmt.Printf("%d benchmark metric(s) matching %q regressed more than %.0f%%: failing the build\n", gated, *match, *failPct)
		os.Exit(1)
	}
	if regressions > 0 {
		fmt.Printf("%d benchmark metric(s) regressed more than %.0f%% vs the committed baseline\n", regressions, *threshold*100)
		if *strict {
			os.Exit(1)
		}
		fmt.Println("(warn-only: not failing the build)")
	} else {
		fmt.Println("no benchmark regressions beyond the threshold")
	}
}

// gateSpec is the -fail-on-regress hard gate: pct is the failure threshold
// in percent (0 disables), match a comma-separated list of benchmark-name
// substrings it covers (any one matching is enough).
type gateSpec struct {
	pct   float64
	match string
}

// covers reports whether a regression of rel (negative for rate drops) on
// the named benchmark trips the gate.
func (g gateSpec) covers(name string, rel float64, lowerBetter bool) bool {
	if g.pct <= 0 {
		return false
	}
	matched := g.match == ""
	for _, sub := range strings.Split(g.match, ",") {
		if sub != "" && strings.Contains(name, sub) {
			matched = true
			break
		}
	}
	if !matched {
		return false
	}
	lim := g.pct / 100
	return (lowerBetter && rel > lim) || (!lowerBetter && rel < -lim)
}

// parseFile reads one `go test -bench` output file into metrics.
func parseFile(path string) (metrics, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m := metrics{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, units := parseLine(sc.Text())
		if name == "" {
			continue
		}
		if m[name] == nil {
			m[name] = map[string]float64{}
		}
		for u, v := range units {
			m[name][u] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return m, nil
}

// parseLine decodes one "BenchmarkX-8  N  1234 ns/op  56 jobs/sec" line.
// Names are kept verbatim; GOMAXPROCS-suffix differences are resolved at
// match time (a sub-benchmark like workers-4 is syntactically identical to
// a -GOMAXPROCS suffix, so stripping eagerly would collapse distinct
// benchmarks).
func parseLine(line string) (string, map[string]float64) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil
	}
	name := fields[0]
	units := map[string]float64{}
	// fields[1] is the iteration count; value/unit pairs follow.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		units[fields[i+1]] = v
	}
	if len(units) == 0 {
		return "", nil
	}
	return name, units
}

// stripCount removes a trailing -N (the shape of a -GOMAXPROCS suffix).
func stripCount(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// matchNames pairs seed benchmark names with PR names: exact matches
// first, then — for leftovers — unique matches modulo a trailing
// -GOMAXPROCS-shaped suffix, so baselines recorded on hosts with a
// different core count still line up.
func matchNames(seed, pr metrics) map[string]string {
	pairs := map[string]string{}
	usedPR := map[string]bool{}
	for name := range seed {
		if pr[name] != nil {
			pairs[name] = name
			usedPR[name] = true
		}
	}
	// Stripped forms of the unmatched PR names; nil marks ambiguity.
	stripped := map[string]*string{}
	for name := range pr {
		if usedPR[name] {
			continue
		}
		key := stripCount(name)
		if _, dup := stripped[key]; dup {
			stripped[key] = nil
		} else {
			n := name
			stripped[key] = &n
		}
	}
	for name := range seed {
		if pairs[name] != "" {
			continue
		}
		// PR side carries the suffix (baseline from a 1-core host)...
		if prName := stripped[name]; prName != nil && !usedPR[*prName] {
			pairs[name] = *prName
			usedPR[*prName] = true
			continue
		}
		s := stripCount(name)
		// ...or the seed side does (baseline from a multicore host)...
		if s != name && pr[s] != nil && !usedPR[s] {
			pairs[name] = s
			usedPR[s] = true
			continue
		}
		// ...or both do, with different core counts.
		if prName := stripped[s]; s != name && prName != nil && !usedPR[*prName] {
			pairs[name] = *prName
			usedPR[*prName] = true
		}
	}
	return pairs
}

// compare prints per-metric deltas for metrics present in both runs and
// returns the number of regressions beyond the warn threshold plus the
// number tripping the hard gate. Lower-is-better units: ns/op;
// higher-is-better: anything per second. PR benchmarks with no baseline
// counterpart — the benches a perf PR introduces — are listed as "new"
// informational lines rather than silently skipped, so they are visible in
// CI diffs from the run that adds them.
func compare(seed, pr metrics, threshold float64, gate gateSpec, out io.Writer) (regressions, gated int) {
	pairs := matchNames(seed, pr)
	names := make([]string, 0, len(pairs))
	for name := range pairs {
		names = append(names, name)
	}
	sort.Strings(names)
	w := bufio.NewWriter(out)
	defer w.Flush()
	if len(names) == 0 {
		fmt.Fprintln(w, "no common benchmarks between the two files")
	}
	for _, name := range names {
		prUnits := pr[pairs[name]]
		for _, unit := range sortedUnits(seed[name]) {
			s := seed[name][unit]
			p, ok := prUnits[unit]
			if !ok || s == 0 {
				continue
			}
			lowerBetter, rate := unitDirection(unit)
			if !lowerBetter && !rate {
				continue // domain metric: not a perf signal
			}
			rel := (p - s) / s
			bad := (lowerBetter && rel > threshold) || (rate && rel < -threshold)
			mark := "  "
			if bad {
				mark = "✗ "
				regressions++
			}
			if gate.covers(name, rel, lowerBetter) {
				mark = "✗!"
				gated++
			}
			fmt.Fprintf(w, "%s%-50s %14s %14.4g → %-14.4g (%+.1f%%)\n", mark, name, unit, s, p, rel*100)
		}
	}
	matchedPR := map[string]bool{}
	for _, prName := range pairs {
		matchedPR[prName] = true
	}
	var fresh []string
	for name := range pr {
		if !matchedPR[name] {
			fresh = append(fresh, name)
		}
	}
	sort.Strings(fresh)
	for _, name := range fresh {
		for _, unit := range sortedUnits(pr[name]) {
			lowerBetter, rate := unitDirection(unit)
			if !lowerBetter && !rate {
				continue
			}
			fmt.Fprintf(w, "+ %-50s %14s %14s → %-14.4g (new, no baseline)\n", name, unit, "—", pr[name][unit])
		}
	}
	return regressions, gated
}

// unitDirection classifies a benchmark unit.
func unitDirection(unit string) (lowerBetter, rate bool) {
	switch {
	case unit == "ns/op" || unit == "B/op" || unit == "allocs/op":
		return true, false
	case strings.HasSuffix(unit, "/sec") || strings.HasSuffix(unit, "/s"):
		return false, true
	default:
		return false, false
	}
}

func sortedUnits(m map[string]float64) []string {
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}
