package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	name, units := parseLine("BenchmarkFleetRun/workers-4-16   \t 1\t  1052000000 ns/op\t       950.3 jobs/sec")
	if name != "BenchmarkFleetRun/workers-4-16" {
		t.Fatalf("name = %q (names are kept verbatim)", name)
	}
	if units["ns/op"] != 1052000000 || units["jobs/sec"] != 950.3 {
		t.Fatalf("units = %v", units)
	}
	if n, _ := parseLine("ok  \trepro\t12.3s"); n != "" {
		t.Fatalf("non-benchmark line parsed as %q", n)
	}
	if n, _ := parseLine("BenchmarkX"); n != "" {
		t.Fatal("truncated line should not parse")
	}
}

// TestMatchNamesSuffixFallback checks both match paths: exact names win
// (workers-1 vs workers-4 must never collapse), and a -GOMAXPROCS-shaped
// suffix difference still lines up when unambiguous.
func TestMatchNamesSuffixFallback(t *testing.T) {
	seed := metrics{
		"BenchmarkFleetRun/workers-1": {"ns/op": 1},
		"BenchmarkFleetRun/workers-4": {"ns/op": 2},
		"BenchmarkTable1":             {"ns/op": 3},
	}
	pr := metrics{
		"BenchmarkFleetRun/workers-1-16": {"ns/op": 1},
		"BenchmarkFleetRun/workers-4-16": {"ns/op": 2},
		"BenchmarkTable1-16":             {"ns/op": 3},
	}
	pairs := matchNames(seed, pr)
	want := map[string]string{
		"BenchmarkFleetRun/workers-1": "BenchmarkFleetRun/workers-1-16",
		"BenchmarkFleetRun/workers-4": "BenchmarkFleetRun/workers-4-16",
		"BenchmarkTable1":             "BenchmarkTable1-16",
	}
	for s, p := range want {
		if pairs[s] != p {
			t.Fatalf("pairs[%q] = %q want %q (all: %v)", s, pairs[s], p, pairs)
		}
	}
	// Same-host comparison: exact names, no cross-talk.
	pairs = matchNames(seed, seed)
	for s := range seed {
		if pairs[s] != s {
			t.Fatalf("self-match broke: %v", pairs)
		}
	}

	// Both sides suffixed with different core counts must still line up.
	seed8 := metrics{
		"BenchmarkFleetRun/workers-1-8": {"ns/op": 1},
		"BenchmarkTable1-8":             {"ns/op": 3},
	}
	pairs = matchNames(seed8, pr)
	if pairs["BenchmarkFleetRun/workers-1-8"] != "BenchmarkFleetRun/workers-1-16" ||
		pairs["BenchmarkTable1-8"] != "BenchmarkTable1-16" {
		t.Fatalf("cross-core-count match failed: %v", pairs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	seed := metrics{
		"BenchmarkFleetRun/workers-4": {"ns/op": 1e9, "jobs/sec": 950, "peak-C": 38.2},
		"BenchmarkTable1":             {"ns/op": 82e6},
		"BenchmarkOnlyInSeed":         {"ns/op": 1},
	}
	pr := metrics{
		"BenchmarkFleetRun/workers-4": {"ns/op": 1.1e9, "jobs/sec": 500, "peak-C": 45.0},
		"BenchmarkTable1":             {"ns/op": 80e6},
	}
	var out strings.Builder
	n, _ := compare(seed, pr, 0.25, gateSpec{}, &out)
	// jobs/sec fell 47% → regression; ns/op rose only 10% → fine; peak-C
	// is a domain metric and must be ignored entirely.
	if n != 1 {
		t.Fatalf("regressions = %d want 1\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "✗ ") || !strings.Contains(out.String(), "jobs/sec") {
		t.Fatalf("output does not flag the jobs/sec regression:\n%s", out.String())
	}
	if strings.Contains(out.String(), "peak-C") {
		t.Fatalf("domain metric compared:\n%s", out.String())
	}

	// Within threshold: no regressions.
	pr["BenchmarkFleetRun/workers-4"]["jobs/sec"] = 900
	out.Reset()
	if n, _ := compare(seed, pr, 0.25, gateSpec{}, &out); n != 0 {
		t.Fatalf("regressions = %d want 0\n%s", n, out.String())
	}
}

// TestCompareFailOnRegressGate pins the -fail-on-regress hard gate: only
// benchmarks whose names contain the match substring count, the gate's
// threshold is independent of the warn threshold, and improvements or
// within-threshold noise never trip it.
func TestCompareFailOnRegressGate(t *testing.T) {
	seed := metrics{
		"BenchmarkFleetRun/workers-4": {"jobs/sec": 1000, "ns/op": 1e9},
		"BenchmarkTable1":             {"ns/op": 100e6},
	}
	pr := metrics{
		"BenchmarkFleetRun/workers-4": {"jobs/sec": 800, "ns/op": 1.25e9}, // -20% / +25%
		"BenchmarkTable1":             {"ns/op": 150e6},                   // +50%, outside the match
	}
	var out strings.Builder
	_, gated := compare(seed, pr, 0.25, gateSpec{pct: 15, match: "BenchmarkFleetRun"}, &out)
	// jobs/sec fell 20% and ns/op rose 25%, both past the 15% gate; the
	// 50% Table1 regression is outside the match.
	if gated != 2 {
		t.Fatalf("gated = %d want 2\n%s", gated, out.String())
	}
	if !strings.Contains(out.String(), "✗!") {
		t.Fatalf("gate marker missing:\n%s", out.String())
	}

	// A looser gate ignores the 20% drop; zero pct disables the gate.
	out.Reset()
	if _, gated := compare(seed, pr, 0.25, gateSpec{pct: 30, match: "BenchmarkFleetRun"}, &out); gated != 0 {
		t.Fatalf("30%% gate tripped on a 25%% regression: %d\n%s", gated, out.String())
	}
	if _, gated := compare(seed, pr, 0.25, gateSpec{}, &out); gated != 0 {
		t.Fatalf("disabled gate tripped: %d", gated)
	}

	// A comma-separated match list gates every listed substring.
	seed["BenchmarkEventRun/jump"] = map[string]float64{"sim-sec/sec": 4000}
	pr["BenchmarkEventRun/jump"] = map[string]float64{"sim-sec/sec": 3000} // -25%
	out.Reset()
	_, gated = compare(seed, pr, 0.25, gateSpec{pct: 15, match: "BenchmarkFleetRun,BenchmarkEventRun"}, &out)
	// FleetRun's two metrics plus EventRun's rate drop; Table1 still outside.
	if gated != 3 {
		t.Fatalf("list gate = %d want 3\n%s", gated, out.String())
	}

	// Empty match gates everything, improvements stay clean.
	pr["BenchmarkFleetRun/workers-4"] = map[string]float64{"jobs/sec": 1200, "ns/op": 0.8e9}
	delete(seed, "BenchmarkEventRun/jump")
	delete(pr, "BenchmarkEventRun/jump")
	out.Reset()
	_, gated = compare(seed, pr, 0.25, gateSpec{pct: 15}, &out)
	if gated != 1 { // only Table1's +50% remains
		t.Fatalf("empty-match gate = %d want 1\n%s", gated, out.String())
	}
}

// TestCompareReportsNewBenchmarks pins the "new bench" path: a PR-side
// benchmark missing from the seed shows up as an informational line, never
// as a regression — and never errors out, even when nothing matches.
func TestCompareReportsNewBenchmarks(t *testing.T) {
	seed := metrics{
		"BenchmarkFleetRun/workers-1": {"ns/op": 1e9, "jobs/sec": 900},
	}
	pr := metrics{
		"BenchmarkFleetRun/workers-1": {"ns/op": 1e9, "jobs/sec": 905},
		"BenchmarkFleetRun/batched":   {"ns/op": 5e8, "jobs/sec": 1800, "peak-C": 38.0},
	}
	var out strings.Builder
	if n, _ := compare(seed, pr, 0.25, gateSpec{}, &out); n != 0 {
		t.Fatalf("new benchmark counted as regression:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "+ BenchmarkFleetRun/batched") || !strings.Contains(text, "new, no baseline") {
		t.Fatalf("new benchmark not reported:\n%s", text)
	}
	if strings.Contains(text, "peak-C") {
		t.Fatalf("domain metric of a new benchmark reported:\n%s", text)
	}

	// Disjoint files: the new-bench lines still print alongside the
	// no-common-benchmarks note instead of erroring out.
	out.Reset()
	if n, _ := compare(metrics{"BenchmarkGone": {"ns/op": 1}}, metrics{"BenchmarkNew": {"ns/op": 2}}, 0.25, gateSpec{}, &out); n != 0 {
		t.Fatalf("disjoint compare flagged regressions:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "no common benchmarks") || !strings.Contains(out.String(), "+ BenchmarkNew") {
		t.Fatalf("disjoint compare output wrong:\n%s", out.String())
	}
}
