// Command ustatrain runs the paper's training pipeline end to end: collect
// the logging corpus from the evaluation workloads, cross-validate the
// chosen algorithm, fit the final predictor and save it as JSON (plus,
// optionally, the corpus as WEKA-compatible ARFF).
//
//	ustatrain -model reptree -out predictor.json
//	ustatrain -model m5p -arff corpus_skin.arff
//	ustatrain -per-run 1200   # quick corpus for smoke tests
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ml"
	"repro/internal/ml/linreg"
	"repro/internal/ml/m5p"
	"repro/internal/ml/mlp"
	"repro/internal/ml/tree"
	"repro/internal/workload"
)

func main() {
	var (
		model   = flag.String("model", "reptree", "reptree|m5p|linreg|mlp")
		out     = flag.String("out", "predictor.json", "predictor output path (empty = skip)")
		arff    = flag.String("arff", "", "also dump the skin-target corpus as ARFF to this path")
		seed    = flag.Int64("seed", 42, "pipeline seed")
		perRun  = flag.Float64("per-run", 0, "truncate each corpus run to this many seconds (0 = full)")
		folds   = flag.Int("folds", 10, "cross-validation folds")
		workers = flag.Int("workers", 0, "corpus-collection worker pool width (0 = GOMAXPROCS)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var factory func() ml.Regressor
	switch *model {
	case "reptree":
		factory = func() ml.Regressor { return tree.New(*seed) }
	case "m5p":
		factory = func() ml.Regressor { return m5p.New() }
	case "linreg":
		factory = func() ml.Regressor { return linreg.New() }
	case "mlp":
		factory = func() ml.Regressor {
			m := mlp.New(*seed)
			m.Epochs = 150
			return m
		}
	default:
		fmt.Fprintf(os.Stderr, "ustatrain: unknown model %q\n", *model)
		os.Exit(1)
	}

	cfg := device.DefaultConfig()
	cfg.Seed = *seed
	fmt.Fprintln(os.Stderr, "ustatrain: collecting corpus from the 13 evaluation workloads...")
	loads := make([]workload.Workload, 0, 13)
	for _, w := range workload.Benchmarks(uint64(*seed)) {
		loads = append(loads, w)
	}
	corpus, err := core.CollectCorpusContext(ctx, cfg, loads, *perRun, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ustatrain:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ustatrain: %d records\n", len(corpus))

	for _, target := range []core.Target{core.SkinTarget, core.ScreenTarget} {
		ds := core.DatasetFromRecords(corpus, target)
		exp, pred, err := ml.CrossValidate(factory, ds, *folds, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustatrain:", err)
			os.Exit(1)
		}
		fmt.Printf("%-6s %d-fold CV: error rate %.2f%%  (gated ≥1°C: %.2f%%)  MAE %.3f °C  RMSE %.3f °C\n",
			target, *folds,
			ml.ErrorRate(exp, pred), ml.GatedErrorRate(exp, pred, 1.0),
			ml.MAE(exp, pred), ml.RMSE(exp, pred))
	}

	predictor, err := core.Train(corpus, factory)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ustatrain:", err)
		os.Exit(1)
	}

	// Which observables carry the signal? (Battery temperature dominates:
	// the pack sits directly under the cover midsection.)
	skinDS := core.DatasetFromRecords(corpus, core.SkinTarget)
	if imp, err := ml.PermutationImportance(predictor.SkinModel, skinDS, *seed); err == nil {
		fmt.Println("skin-model permutation importance (MAE increase when shuffled):")
		for _, im := range imp {
			fmt.Printf("  %-16s +%.3f °C\n", im.Attr, im.Increase)
		}
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustatrain:", err)
			os.Exit(1)
		}
		if err := core.SavePredictor(f, predictor); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "ustatrain:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("predictor saved to %s\n", *out)
	}
	if *arff != "" {
		f, err := os.Create(*arff)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustatrain:", err)
			os.Exit(1)
		}
		if err := ml.WriteARFF(f, "usta-skin", core.DatasetFromRecords(corpus, core.SkinTarget)); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "ustatrain:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("skin corpus saved to %s\n", *arff)
	}
}
