// Command ustafleetd is the fleet job service: a persistent HTTP daemon
// that accepts declarative scenario sweeps, runs them asynchronously on a
// fleet of worker daemons (or the in-process pool), and serves status,
// analytics and merged telemetry while they run.
//
//	ustafleetd -listen :8080 -hosts hostA:9000,hostB:9000
//
//	POST /jobs                  submit a scenario spec (JSON body) → {"id": ...}
//	GET  /jobs                  list submitted jobs, submission order
//	GET  /jobs/{id}             status, progress, and (when done) analytics
//	POST /jobs/{id}/cancel      abort a running job
//	GET  /jobs/{id}/telemetry   JSONL samples merged into submission order
//	GET  /jobs/{id}/events      SSE stream of live aggregate snapshots
//	GET  /metrics               Prometheus text exposition
//	GET  /fleet                 merged per-host recovery/saturation table
//	GET  /                      embedded live dashboard
//
// With -hosts, jobs dispatch to long-lived `ustaworker -listen` daemons
// through the networked coordinator; without it they run on the local
// worker pool. Either way results are byte-identical. -admit-rate/-burst
// put a token bucket in front of POST /jobs (submissions beyond it get
// 429). SIGTERM/SIGINT drains: running jobs are cancelled, the HTTP
// listener closes, and the process exits 0.
//
// With -state-dir, every submission and each completed cell is journaled
// to a write-ahead log before it is acknowledged. After a crash (or a
// drain) a restart with the same -state-dir restores finished jobs'
// status and results and resumes interrupted sweeps, re-running only the
// cells the ledger is missing — final aggregates are byte-identical to an
// uninterrupted run. -job-deadline bounds each sweep's wall-clock time.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/fleet/durable"
	fleetnet "repro/internal/fleet/net"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:8080", "HTTP listen address for the job API")
		hosts    = flag.String("hosts", "", "comma-separated ustaworker daemon addresses (empty: run jobs on the in-process pool)")
		workers  = flag.Int("workers", 0, "worker pool width per job (0 = GOMAXPROCS)")
		rate     = flag.Float64("admit-rate", 0, "admission token refill rate in jobs/sec (0 = always admit)")
		burst    = flag.Int("admit-burst", 1, "admission token bucket burst size")
		fallbk   = flag.Bool("local-fallback", false, "with -hosts: when every worker host stays down past the recovery deadline, finish the remaining jobs on the in-process pool instead of failing them")
		stateDir = flag.String("state-dir", "", "directory of per-job write-ahead logs; on restart, finished jobs are restored and interrupted sweeps resume from their completed-cell ledger (empty: in-memory only)")
		jobDeadl = flag.Duration("job-deadline", 0, "wall-clock deadline per submitted sweep, e.g. 30m (0: none)")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "ustafleetd: ", log.LstdFlags)

	var runner fleet.Runner
	if *hosts != "" {
		hs := strings.Split(*hosts, ",")
		for i := range hs {
			hs[i] = strings.TrimSpace(hs[i])
		}
		nr := fleetnet.New(hs)
		nr.Logf = logger.Printf // includes the per-run RunnerStats snapshot line
		nr.FallbackLocal = *fallbk
		runner = nr
	} else if *fallbk {
		logger.Print("warning: -local-fallback has no effect without -hosts")
	}
	js := fleetnet.NewJobServer(runner)
	js.Workers = *workers
	js.Logf = logger.Printf
	js.JobDeadline = *jobDeadl
	if *rate > 0 {
		js.Admission = fleetnet.NewTokenBucket(*rate, *burst)
	}
	if *stateDir != "" {
		store, err := durable.OpenStore(*stateDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustafleetd: state dir:", err)
			os.Exit(1)
		}
		js.Store = store
		// Replay the WAL before the listener opens: finished jobs answer
		// status queries again, interrupted sweeps resume immediately.
		if err := js.Recover(); err != nil {
			fmt.Fprintln(os.Stderr, "ustafleetd: recover:", err)
			os.Exit(1)
		}
		logger.Printf("state dir %s: recovery complete", *stateDir)
	}

	srv := &http.Server{Addr: *listen, Handler: js.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		logger.Print("draining: cancelling jobs, closing listener")
		js.Close()
		shCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			logger.Printf("drain: http shutdown: %v", err)
		}
	}()

	logger.Printf("listening on %s (hosts: %s)", *listen, orDefault(*hosts, "in-process"))
	err := srv.ListenAndServe()
	if !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "ustafleetd:", err)
		os.Exit(1)
	}
	<-drained
}

func orDefault(s, d string) string {
	if s == "" {
		return d
	}
	return s
}
