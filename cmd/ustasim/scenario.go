package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

// runScenario executes a declarative sweep file and prints its fleet
// analytics: per-user comfort distributions always, a violation heat map
// when the grid has more than one (ambient, limit) cell, and
// scheme-vs-scheme deltas when the scheme axis has at least two entries.
// An optional JSONL path streams every telemetry sample; an optional CSV
// directory receives the aggregate tables. shards != 0 fans the grid out
// across worker subprocesses, a non-empty hosts list dispatches shards to
// long-lived `ustaworker -listen` daemons over TCP (overriding shards),
// and batch runs cohorts of grid cells in lockstep on the batched engine —
// aggregates and streams are identical under every combination.
// localFallback lets a hosts run finish on the in-process pool when every
// host stays down past the coordinator's recovery deadline. event selects
// the stepping engine (off|tick|oracle|jump; see repro.EventMode). walPath
// journals the sweep to a write-ahead log and resume continues one that
// was killed partway, re-running only unfinished cells — outputs stay
// byte-identical to an uninterrupted run. Coordinator
// recovery logs and the end-of-run stats snapshot go to stderr so stdout
// stays byte-comparable across runner choices; statsPath additionally
// dumps that end-of-run RunnerStats snapshot as JSON for tooling.
func runScenario(o cliOptions, out io.Writer) error {
	mode, err := repro.ParseEventMode(o.event)
	if err != nil {
		return err
	}
	spec, err := repro.LoadScenario(o.scenPath)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, spec)

	opts := []repro.ScenarioOption{
		repro.ScenarioWorkers(o.workers),
		repro.ScenarioProgress(func(done, total int) {
			if done == total || done%50 == 0 {
				fmt.Fprintf(out, "\r%d/%d jobs", done, total)
				if done == total {
					fmt.Fprintln(out)
				}
			}
		}),
	}
	var writeStats func() error
	switch {
	case o.hosts != "":
		hs := strings.Split(o.hosts, ",")
		for i := range hs {
			hs[i] = strings.TrimSpace(hs[i])
		}
		nr := repro.NewNetRunner(hs)
		nr.FallbackLocal = o.localFallback
		nr.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "ustasim: "+format+"\n", args...)
		}
		opts = append(opts, repro.ScenarioRunner(nr))
		if o.statsPath != "" {
			writeStats = func() error {
				data, err := json.MarshalIndent(nr.Stats(), "", "  ")
				if err != nil {
					return err
				}
				return os.WriteFile(o.statsPath, append(data, '\n'), 0o644)
			}
		}
	case o.shards != 0:
		opts = append(opts, repro.ScenarioShards(o.shards))
	}
	if o.batch {
		opts = append(opts, repro.WithBatchedRunner())
	}
	if mode != repro.EventOff {
		opts = append(opts, repro.ScenarioEventMode(mode))
	}
	if o.walPath != "" {
		opts = append(opts, repro.ScenarioWAL(o.walPath))
		if o.resume {
			opts = append(opts, repro.ScenarioResume())
		}
	}
	var jsonlFile *os.File
	var jsonlSink repro.Sink
	if o.jsonlPath != "" {
		jsonlFile, err = os.Create(o.jsonlPath)
		if err != nil {
			return err
		}
		// Closed explicitly after the run so latched write errors (disk
		// full, closed pipe) fail the command instead of truncating the
		// stream silently; the defer only covers early-error returns.
		defer func() {
			if jsonlFile != nil {
				jsonlFile.Close()
			}
		}()
		jsonlSink = repro.NewJSONLSink(jsonlFile)
		opts = append(opts, repro.ScenarioSink(jsonlSink))
	}

	res, err := repro.RunScenario(context.Background(), spec, opts...)
	if err != nil {
		return err
	}
	if writeStats != nil {
		// Written before the first-error check: the recovery counters are
		// most interesting precisely when some jobs failed.
		if err := writeStats(); err != nil {
			return fmt.Errorf("stats snapshot %s: %w", o.statsPath, err)
		}
	}
	if jsonlSink != nil {
		if err := jsonlSink.Close(); err != nil {
			return fmt.Errorf("jsonl stream %s: %w", o.jsonlPath, err)
		}
		f := jsonlFile
		jsonlFile = nil
		if err := f.Close(); err != nil {
			return err
		}
	}
	if err := res.FirstError(); err != nil {
		return err
	}

	comfort := res.ComfortByUser()
	fmt.Fprintln(out, "\nPer-user comfort:")
	fmt.Fprintln(out, repro.ComfortMarkdown(comfort))

	heat := res.ViolationHeatMap()
	showHeat := len(heat.Rows)*len(heat.Cols) > 1
	if showHeat {
		fmt.Fprintf(out, "Violation heat map (mean %s, %s rows × %s cols):\n", heat.ValueLabel, heat.RowLabel, heat.ColLabel)
		fmt.Fprintln(out, heat.Markdown())
	}

	var deltas []repro.SchemeDelta
	if s := spec.Schemes; len(s) >= 2 {
		base, alt := s[0].Label(), s[1].Label()
		deltas, err = res.CompareSchemes(base, alt)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, repro.DeltasMarkdown(deltas, base, alt))
	}

	if o.csvDir != "" {
		if err := os.MkdirAll(o.csvDir, 0o755); err != nil {
			return err
		}
		if err := writeCSV(filepath.Join(o.csvDir, "comfort.csv"), func(w io.Writer) error {
			return repro.WriteComfortCSV(w, comfort)
		}); err != nil {
			return err
		}
		if showHeat {
			if err := writeCSV(filepath.Join(o.csvDir, "heatmap.csv"), heat.WriteCSV); err != nil {
				return err
			}
		}
		if deltas != nil {
			if err := writeCSV(filepath.Join(o.csvDir, "deltas.csv"), func(w io.Writer) error {
				return repro.WriteDeltasCSV(w, deltas)
			}); err != nil {
				return err
			}
		}
		fmt.Fprintf(out, "aggregates written to %s\n", o.csvDir)
	}
	return nil
}

// writeCSV writes one aggregate table to a file.
func writeCSV(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
