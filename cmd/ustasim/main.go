// Command ustasim regenerates the paper's evaluation artifacts from the
// simulation. Each experiment prints a table (or ASCII trace chart)
// matching one figure/table of the paper:
//
//	ustasim -experiment fig3                 # prediction-model error rates
//	ustasim -experiment fig4 -csv out/       # Skype traces + CSV dump
//	ustasim -experiment table1 -scale 0.5    # all 13 workloads, half length
//	ustasim -experiment all                  # everything, paper scale
//	ustasim -experiment table1 -workers 1    # serial run (same output)
//
// Beyond the published artifacts, -scenario runs a declarative sweep file
// (JSON or YAML; see examples/sweep) and prints its fleet analytics —
// per-user comfort distributions, ambient × limit violation heat maps and
// scheme-vs-scheme deltas:
//
//	ustasim -scenario examples/sweep/table1.json
//	ustasim -scenario sweep.yaml -jsonl samples.jsonl -csv out/
//
// The -scale flag shortens evaluation runs for quick looks; the training
// corpus always runs long enough to cover the hot regime (-corpus-sec).
// Experiments fan out on the fleet engine: -workers bounds the pool, and
// per-run seeds are position-derived, so the artifacts are identical at any
// worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"repro"
	"repro/internal/experiments"
)

func main() {
	// When spawned as a shard worker (-shards re-executes this binary),
	// serve the shard over stdin/stdout and exit before touching flags.
	repro.ShardWorkerMain()
	var (
		exp        = flag.String("experiment", "all", "fig1|fig2|fig3|fig4|fig5|table1|replicate|all")
		scenPath   = flag.String("scenario", "", "declarative sweep file (JSON or YAML); overrides -experiment")
		jsonlPath  = flag.String("jsonl", "", "stream every scenario sample to this JSONL file")
		scale      = flag.Float64("scale", 1.0, "evaluation run duration scale (0,1]")
		seed       = flag.Int64("seed", 42, "base seed for workload jitter and ML shuffling")
		corpusSec  = flag.Float64("corpus-sec", 0, "truncate each corpus run to this many seconds (0 = full)")
		mlpEpochs  = flag.Int("mlp-epochs", 0, "MLP training epochs for fig3 (0 = default 150)")
		csvDir     = flag.String("csv", "", "directory to write fig4 trace CSVs or scenario aggregate CSVs (empty = no dump)")
		repN       = flag.Int("n", 5, "replications for -experiment replicate")
		workers    = flag.Int("workers", 0, "simulation worker pool width (0 = GOMAXPROCS); results are identical at any width")
		shards     = flag.Int("shards", 0, "run the scenario across this many worker processes (0 = in-process); results are identical either way")
		hosts      = flag.String("hosts", "", "comma-separated ustaworker -listen daemon addresses to dispatch the scenario to (overrides -shards); results are identical either way")
		batch      = flag.Bool("batch", false, "run the scenario on the cohort-batched lockstep engine; results are identical, sweeps over shared device configs run faster")
		event      = flag.String("event", "off", "scenario stepping engine: off|tick|oracle|jump (tick is byte-identical to off; jump replays scheduling exactly with held-input thermal tolerance)")
		fallbk     = flag.Bool("local-fallback", false, "with -hosts: when every host stays down past the coordinator's recovery deadline, finish the remaining jobs in-process instead of failing them")
		statsJSON  = flag.String("stats-json", "", "with -hosts: write the coordinator's end-of-run RunnerStats snapshot (redials, hedges, breaker states) to this JSON file")
		walPath    = flag.String("wal", "", "journal the scenario sweep to this write-ahead log; a killed run can continue with -resume, re-running only unfinished cells")
		resume     = flag.Bool("resume", false, "continue the interrupted sweep journaled in -wal (aggregates byte-identical to an uninterrupted run)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (taken at exit) to this file")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "ustasim: -shards must be >= 0 (0 = in-process)")
		os.Exit(1)
	}
	if *shards != 0 && *scenPath == "" {
		fmt.Fprintln(os.Stderr, "ustasim: -shards requires -scenario")
		os.Exit(1)
	}
	if *hosts != "" && *scenPath == "" {
		fmt.Fprintln(os.Stderr, "ustasim: -hosts requires -scenario")
		os.Exit(1)
	}
	if *batch && *scenPath == "" {
		fmt.Fprintln(os.Stderr, "ustasim: -batch requires -scenario")
		os.Exit(1)
	}
	if *fallbk && *hosts == "" {
		fmt.Fprintln(os.Stderr, "ustasim: -local-fallback requires -hosts")
		os.Exit(1)
	}
	if *statsJSON != "" && *hosts == "" {
		fmt.Fprintln(os.Stderr, "ustasim: -stats-json requires -hosts")
		os.Exit(1)
	}
	if *jsonlPath != "" && *scenPath == "" {
		fmt.Fprintln(os.Stderr, "ustasim: -jsonl requires -scenario")
		os.Exit(1)
	}
	if *event != "off" && *scenPath == "" {
		fmt.Fprintln(os.Stderr, "ustasim: -event requires -scenario")
		os.Exit(1)
	}
	if *walPath != "" && *scenPath == "" {
		fmt.Fprintln(os.Stderr, "ustasim: -wal requires -scenario")
		os.Exit(1)
	}
	if *resume && *walPath == "" {
		fmt.Fprintln(os.Stderr, "ustasim: -resume requires -wal")
		os.Exit(1)
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ustasim:", err)
		os.Exit(1)
	}
	opts := cliOptions{
		experiment: *exp, scenPath: *scenPath, jsonlPath: *jsonlPath,
		scale: *scale, seed: *seed, corpusSec: *corpusSec,
		mlpEpochs: *mlpEpochs, csvDir: *csvDir, repN: *repN,
		workers: *workers, shards: *shards, hosts: *hosts, batch: *batch,
		localFallback: *fallbk, statsPath: *statsJSON, event: *event,
		walPath: *walPath, resume: *resume,
	}
	if err := realMain(opts); err != nil {
		stopProfiles()
		fmt.Fprintln(os.Stderr, "ustasim:", err)
		os.Exit(1)
	}
	if err := stopProfiles(); err != nil {
		fmt.Fprintln(os.Stderr, "ustasim:", err)
		os.Exit(1)
	}
}

// startProfiles starts the optional CPU profile and returns a closer that
// stops it and snapshots the heap profile. Profiling the whole command —
// experiments or scenario sweeps alike — is what lets perf work measure
// real sweeps without ad-hoc patches.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("start CPU profile: %w", err)
		}
		cpuFile = f
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
			cpuFile = nil
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC() // materialize retained-heap accounting
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("write heap profile: %w", err)
			}
			memPath = ""
		}
		return nil
	}, nil
}

// cliOptions carries the parsed flag values into realMain by value, so
// the body reads plain fields instead of flag pointers.
type cliOptions struct {
	experiment    string
	scenPath      string
	jsonlPath     string
	scale         float64
	seed          int64
	corpusSec     float64
	mlpEpochs     int
	csvDir        string
	repN          int
	workers       int
	shards        int
	hosts         string
	batch         bool
	localFallback bool
	statsPath     string
	event         string
	walPath       string
	resume        bool
}

func realMain(o cliOptions) error {
	if o.scenPath != "" {
		// A scenario file carries its own scale, seeds and corpus policy;
		// silently ignoring the experiment flags would make the user
		// believe they applied.
		var flagErr error
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "experiment", "scale", "seed", "corpus-sec", "mlp-epochs", "n":
				if flagErr == nil {
					flagErr = fmt.Errorf("-%s is not supported with -scenario (set it in the spec)", f.Name)
				}
			}
		})
		if flagErr != nil {
			return flagErr
		}
		return runScenario(o, os.Stdout)
	}

	cfg := experiments.DefaultConfig()
	cfg.Scale = o.scale
	cfg.Seed = o.seed
	cfg.CorpusPerRunSec = o.corpusSec
	cfg.MLPEpochs = o.mlpEpochs
	cfg.Workers = o.workers
	pl := experiments.NewPipeline(cfg)

	run := func(name string) error {
		switch name {
		case "fig1":
			fmt.Println(experiments.RunFig1(pl))
		case "fig2":
			fmt.Println(experiments.RunFig2(pl))
		case "fig3":
			fmt.Println(experiments.RunFig3(pl))
		case "fig4":
			res := experiments.RunFig4(pl)
			fmt.Println(res)
			if o.csvDir != "" {
				if err := dumpFig4(res, o.csvDir); err != nil {
					return err
				}
				fmt.Printf("traces written to %s\n", o.csvDir)
			}
		case "fig5":
			fmt.Println(experiments.RunFig5(pl))
		case "table1":
			fmt.Println(experiments.RunTable1(pl))
		case "replicate":
			fmt.Println(experiments.ReplicateFig4(pl, o.repN))
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	var names []string
	if o.experiment == "all" {
		names = []string{"fig1", "fig2", "fig3", "fig4", "fig5", "table1"}
	} else {
		names = []string{o.experiment}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			return err
		}
	}
	return nil
}

func dumpFig4(res *experiments.Fig4Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	base, err := os.Create(filepath.Join(dir, "fig4_baseline.csv"))
	if err != nil {
		return err
	}
	defer base.Close()
	if err := res.Baseline.Trace.WriteCSV(base); err != nil {
		return err
	}
	usta, err := os.Create(filepath.Join(dir, "fig4_usta.csv"))
	if err != nil {
		return err
	}
	defer usta.Close()
	return res.USTA.Trace.WriteCSV(usta)
}
