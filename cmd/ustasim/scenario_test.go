package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	fleetnet "repro/internal/fleet/net"
)

// TestMain lets the test binary serve as a shard worker for the -shards
// smoke test (the shard runner re-executes the current binary).
func TestMain(m *testing.M) {
	repro.ShardWorkerMain()
	os.Exit(m.Run())
}

// scenOpts builds a runScenario option set for one sweep file; mutate
// extras in the callback (nil for the defaults).
func scenOpts(path string, mod func(*cliOptions)) cliOptions {
	o := cliOptions{scenPath: path, event: "off"}
	if mod != nil {
		mod(&o)
	}
	return o
}

// TestRunScenarioSmoke drives the -scenario path end to end on a tiny
// sweep: two workloads × two ambients, trace-free, streaming to JSONL and
// dumping aggregate CSVs.
func TestRunScenarioSmoke(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "sweep.yaml")
	spec := `
version: 1
name: smoke
workloads: [skype, game]
ambients_c: [25, 40]
duration:
  sec: 30
trace_free: true
`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonl := filepath.Join(dir, "samples.jsonl")
	csvDir := filepath.Join(dir, "out")

	var out strings.Builder
	if err := runScenario(scenOpts(specPath, func(o *cliOptions) { o.workers = 2; o.jsonlPath = jsonl; o.csvDir = csvDir }), &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"smoke:", "2 workloads", "4/4 jobs", "Per-user comfort", "heat map"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines == 0 {
		t.Fatal("JSONL stream is empty")
	}

	// Shard mode: the same sweep across 2 worker processes must stream the
	// same number of samples and produce the same aggregate tables.
	jsonl2 := filepath.Join(dir, "samples_sharded.jsonl")
	csvDir2 := filepath.Join(dir, "out_sharded")
	var out2 strings.Builder
	if err := runScenario(scenOpts(specPath, func(o *cliOptions) { o.workers = 2; o.shards = 2; o.jsonlPath = jsonl2; o.csvDir = csvDir2 }), &out2); err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	data2, err := os.ReadFile(jsonl2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Count(string(data2), "\n"), strings.Count(string(data), "\n"); got != want {
		t.Fatalf("sharded JSONL streamed %d samples, local streamed %d", got, want)
	}
	for _, f := range []string{"comfort.csv", "heatmap.csv"} {
		local, err := os.ReadFile(filepath.Join(csvDir, f))
		if err != nil {
			t.Fatal(err)
		}
		sharded, err := os.ReadFile(filepath.Join(csvDir2, f))
		if err != nil {
			t.Fatalf("sharded aggregate %s not written: %v", f, err)
		}
		if string(local) != string(sharded) {
			t.Fatalf("aggregate %s differs between local and sharded runs:\nlocal:\n%s\nsharded:\n%s", f, local, sharded)
		}
	}
	for _, f := range []string{"comfort.csv", "heatmap.csv"} {
		if _, err := os.Stat(filepath.Join(csvDir, f)); err != nil {
			t.Fatalf("aggregate %s not written: %v", f, err)
		}
	}
	if _, err := os.Stat(filepath.Join(csvDir, "deltas.csv")); err == nil {
		t.Fatal("single-scheme sweep should not write deltas.csv")
	}

	// Bad spec path and bad spec content both surface as errors.
	if err := runScenario(scenOpts(filepath.Join(dir, "missing.json"), func(o *cliOptions) { o.workers = 1 }), &out); err == nil {
		t.Fatal("missing file should fail")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScenario(scenOpts(bad, func(o *cliOptions) { o.workers = 1 }), &out); err == nil || !strings.Contains(err.Error(), "no workloads") {
		t.Fatalf("invalid spec error = %v", err)
	}
}

// writeSmokeSpec writes the small two-axis sweep the smoke tests share.
func writeSmokeSpec(t *testing.T, dir string) string {
	t.Helper()
	specPath := filepath.Join(dir, "sweep.yaml")
	spec := `
version: 1
name: smoke
workloads: [skype, game]
ambients_c: [25, 40]
duration:
  sec: 30
trace_free: true
`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return specPath
}

// TestRunScenarioBatchSmoke is the CLI half of the batched-engine
// acceptance: `-batch` (alone and combined with `-shards`) must stream the
// same number of samples and write byte-identical aggregate tables as the
// default runner.
func TestRunScenarioBatchSmoke(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSmokeSpec(t, dir)

	type runOut struct {
		samples int
		tables  map[string]string
	}
	run := func(label string, shards int, batch bool) runOut {
		t.Helper()
		jsonl := filepath.Join(dir, label+".jsonl")
		csvDir := filepath.Join(dir, label)
		var out strings.Builder
		if err := runScenario(scenOpts(specPath, func(o *cliOptions) {
			o.workers = 2
			o.shards = shards
			o.batch = batch
			o.jsonlPath = jsonl
			o.csvDir = csvDir
		}), &out); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		data, err := os.ReadFile(jsonl)
		if err != nil {
			t.Fatal(err)
		}
		ro := runOut{samples: strings.Count(string(data), "\n"), tables: map[string]string{}}
		for _, f := range []string{"comfort.csv", "heatmap.csv"} {
			tb, err := os.ReadFile(filepath.Join(csvDir, f))
			if err != nil {
				t.Fatalf("%s: aggregate %s not written: %v", label, f, err)
			}
			ro.tables[f] = string(tb)
		}
		return ro
	}

	local := run("local", 0, false)
	if local.samples == 0 {
		t.Fatal("local run streamed no samples")
	}
	for _, tc := range []struct {
		label  string
		shards int
	}{{"batched", 0}, {"batched_sharded", 2}} {
		got := run(tc.label, tc.shards, true)
		if got.samples != local.samples {
			t.Fatalf("%s streamed %d samples, local %d", tc.label, got.samples, local.samples)
		}
		for f, want := range local.tables {
			if got.tables[f] != want {
				t.Fatalf("%s aggregate %s differs from local:\n%s\nvs\n%s", tc.label, f, got.tables[f], want)
			}
		}
	}
}

// TestRunScenarioHostsSmoke is the CLI half of the networked-fleet
// acceptance: `-hosts` pointed at two live worker daemons must stream the
// same number of samples and write byte-identical aggregate tables as the
// in-process runner.
func TestRunScenarioHostsSmoke(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSmokeSpec(t, dir)

	var addrs []string
	for i := 0; i < 2; i++ {
		srv := &fleetnet.Server{Capacity: 2}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(context.Background(), ln)
		t.Cleanup(srv.Shutdown)
		addrs = append(addrs, ln.Addr().String())
	}

	run := func(label, hosts string) (int, map[string]string) {
		t.Helper()
		jsonl := filepath.Join(dir, label+".jsonl")
		csvDir := filepath.Join(dir, label)
		var out strings.Builder
		if err := runScenario(scenOpts(specPath, func(o *cliOptions) { o.workers = 2; o.hosts = hosts; o.jsonlPath = jsonl; o.csvDir = csvDir }), &out); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		data, err := os.ReadFile(jsonl)
		if err != nil {
			t.Fatal(err)
		}
		tables := map[string]string{}
		for _, f := range []string{"comfort.csv", "heatmap.csv"} {
			tb, err := os.ReadFile(filepath.Join(csvDir, f))
			if err != nil {
				t.Fatalf("%s: aggregate %s not written: %v", label, f, err)
			}
			tables[f] = string(tb)
		}
		return strings.Count(string(data), "\n"), tables
	}

	localSamples, localTables := run("local", "")
	if localSamples == 0 {
		t.Fatal("local run streamed no samples")
	}
	netSamples, netTables := run("hosts", strings.Join(addrs, ","))
	if netSamples != localSamples {
		t.Fatalf("networked run streamed %d samples, local %d", netSamples, localSamples)
	}
	for f, want := range localTables {
		if netTables[f] != want {
			t.Fatalf("networked aggregate %s differs from local:\n%s\nvs\n%s", f, netTables[f], want)
		}
	}
}

// TestRunScenarioResumeSmoke is the CLI half of the durable-sweep
// acceptance: a `-wal` run journals the sweep; crashes are simulated by
// truncating the journal at several byte offsets; each `-resume` run must
// write aggregate tables byte-identical to the uninterrupted run.
func TestRunScenarioResumeSmoke(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSmokeSpec(t, dir)

	run := func(label, wal string, resume bool) map[string]string {
		t.Helper()
		csvDir := filepath.Join(dir, label)
		var out strings.Builder
		if err := runScenario(scenOpts(specPath, func(o *cliOptions) {
			o.workers = 2
			o.walPath = wal
			o.resume = resume
			o.csvDir = csvDir
		}), &out); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		tables := map[string]string{}
		for _, f := range []string{"comfort.csv", "heatmap.csv"} {
			tb, err := os.ReadFile(filepath.Join(csvDir, f))
			if err != nil {
				t.Fatalf("%s: aggregate %s not written: %v", label, f, err)
			}
			tables[f] = string(tb)
		}
		return tables
	}

	cleanWal := filepath.Join(dir, "clean.wal")
	clean := run("clean", cleanWal, false)
	walData, err := os.ReadFile(cleanWal)
	if err != nil {
		t.Fatal(err)
	}
	// First frame after the 8-byte header is the submission record:
	// [4B len][1B type][payload][4B crc].
	submitEnd := 8 + 4 + 1 + int(binary.LittleEndian.Uint32(walData[8:])) + 4
	cuts := []int{
		submitEnd + 10,                 // torn mid cell table: full re-run
		(submitEnd + len(walData)) / 2, // partial ledger survives
		len(walData) - 5,               // torn status: every cell ledgered
	}
	for i, cut := range cuts {
		label := fmt.Sprintf("cut%d", i)
		walPath := filepath.Join(dir, label+".wal")
		if err := os.WriteFile(walPath, walData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got := run(label, walPath, true)
		for f, want := range clean {
			if got[f] != want {
				t.Fatalf("%s (cut %d/%d): aggregate %s diverged:\n%s\nvs\n%s",
					label, cut, len(walData), f, got[f], want)
			}
		}
	}

	// An existing journal without -resume is refused, not overwritten.
	var out strings.Builder
	err = runScenario(scenOpts(specPath, func(o *cliOptions) { o.workers = 1; o.walPath = cleanWal }), &out)
	if err == nil || !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("overwrite refusal: err = %v", err)
	}
}

// TestProfileFlagsSmoke exercises -cpuprofile/-memprofile end to end: both
// profiles must come out non-empty after a scenario run.
func TestProfileFlagsSmoke(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSmokeSpec(t, dir)
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	stop, err := startProfiles(cpuPath, memPath)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runScenario(scenOpts(specPath, func(o *cliOptions) { o.workers = 1; o.batch = true }), &out); err != nil {
		stop()
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpuPath, memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
	// Idempotent stop: a second call must not fail or rewrite anything.
	if err := stop(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
}
