package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunScenarioSmoke drives the -scenario path end to end on a tiny
// sweep: two workloads × two ambients, trace-free, streaming to JSONL and
// dumping aggregate CSVs.
func TestRunScenarioSmoke(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "sweep.yaml")
	spec := `
version: 1
name: smoke
workloads: [skype, game]
ambients_c: [25, 40]
duration:
  sec: 30
trace_free: true
`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonl := filepath.Join(dir, "samples.jsonl")
	csvDir := filepath.Join(dir, "out")

	var out strings.Builder
	if err := runScenario(specPath, 2, jsonl, csvDir, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"smoke:", "2 workloads", "4/4 jobs", "Per-user comfort", "heat map"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	data, err := os.ReadFile(jsonl)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines == 0 {
		t.Fatal("JSONL stream is empty")
	}
	for _, f := range []string{"comfort.csv", "heatmap.csv"} {
		if _, err := os.Stat(filepath.Join(csvDir, f)); err != nil {
			t.Fatalf("aggregate %s not written: %v", f, err)
		}
	}
	if _, err := os.Stat(filepath.Join(csvDir, "deltas.csv")); err == nil {
		t.Fatal("single-scheme sweep should not write deltas.csv")
	}

	// Bad spec path and bad spec content both surface as errors.
	if err := runScenario(filepath.Join(dir, "missing.json"), 1, "", "", &out); err == nil {
		t.Fatal("missing file should fail")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := runScenario(bad, 1, "", "", &out); err == nil || !strings.Contains(err.Error(), "no workloads") {
		t.Fatalf("invalid spec error = %v", err)
	}
}
