// Command ustaworker executes fleet shards for a coordinator. It runs in
// one of two modes:
//
//   - Pipe mode (default): serve exactly one wire.ShardRequest over
//     stdin/stdout and exit. A shard coordinator (repro.NewShardRunner /
//     ustasim -shards) spawns workers by re-executing its own binary by
//     default; point the runner's Command at a built ustaworker to
//     decouple the coordinator from the worker build.
//   - Daemon mode (-listen host:port): a long-lived TCP worker serving
//     shard requests from a networked coordinator (repro.NewNetRunner /
//     ustasim -hosts / ustafleetd -hosts). The daemon advertises its
//     -capacity in a hello handshake and executes up to that many shards
//     concurrently, across any number of connections.
//
// Both modes shut down gracefully on SIGTERM/SIGINT: in-flight shards
// finish and flush their frames, then the process exits 0. A coordinator
// watching a draining daemon sees its connection close between shards,
// marks the host dead, and re-dispatches elsewhere.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/fleet/net"
	"repro/internal/fleet/shard"
)

func main() {
	var (
		listen   = flag.String("listen", "", "serve shards as a TCP daemon on this host:port (empty: one shard over stdin/stdout)")
		capacity = flag.Int("capacity", 0, "daemon mode: concurrent shard limit advertised to coordinators (0 = GOMAXPROCS)")
		verbose  = flag.Bool("v", false, "daemon mode: log connection and shard events to stderr")
	)
	flag.Parse()

	if *listen == "" {
		runPipe()
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s := &net.Server{Capacity: *capacity}
	if *verbose {
		s.Logf = log.New(os.Stderr, "ustaworker: ", log.LstdFlags).Printf
	}
	if err := s.ListenAndServe(ctx, *listen); err != nil {
		fmt.Fprintln(os.Stderr, "ustaworker:", err)
		os.Exit(1)
	}
}

// runPipe serves one shard over stdin/stdout. SIGTERM/SIGINT during the
// shard lets it finish and flush (the signal is absorbed); a signal while
// still waiting for the request unblocks the read and exits cleanly.
func runPipe() {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- shard.Serve(os.Stdin, os.Stdout) }()
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustaworker:", err)
			os.Exit(1)
		}
	case <-sig:
		os.Stdin.Close() // unblock an idle request read; an in-flight shard finishes
		<-done
	}
}
