// Command ustaworker is a standalone shard worker: it serves exactly one
// wire.ShardRequest over stdin/stdout and exits. A shard coordinator
// (repro.NewShardRunner / ustasim -shards) spawns workers by re-executing
// its own binary by default; point the runner's Command at a built
// ustaworker to decouple the coordinator from the worker build — the first
// step toward dispatching shards to other hosts.
package main

import (
	"fmt"
	"os"

	"repro/internal/fleet/shard"
)

func main() {
	if err := shard.Serve(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ustaworker:", err)
		os.Exit(1)
	}
}
