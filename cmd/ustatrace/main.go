// Command ustatrace runs one workload under a chosen governor (optionally
// wrapped by USTA) and writes the full temperature/frequency trace as CSV —
// the raw material for custom plots. Built on the Session API: construction
// errors are reported instead of panicking, and ^C stops the simulation at
// the next step while still flushing the partial trace.
//
//	ustatrace -workload skype -out skype.csv
//	ustatrace -workload game -governor performance -dur 600
//	ustatrace -workload antutu-tester -usta 37 -out tester_usta.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro"
	"repro/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "skype", "one of the 13 paper workloads")
		gov     = flag.String("governor", "ondemand", "ondemand|interactive|conservative|schedutil|performance|powersave")
		dur     = flag.Float64("dur", 0, "run duration in seconds (0 = workload length)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		out     = flag.String("out", "", "CSV output path (empty = stdout)")
		ustaLim = flag.Float64("usta", 0, "attach USTA with this skin limit in °C (0 = off)")
		ambient = flag.Float64("ambient", 25, "ambient temperature in °C")
	)
	flag.Parse()

	w := repro.WorkloadByName(*name, uint64(*seed))
	if w == nil {
		fmt.Fprintf(os.Stderr, "ustatrace: unknown workload %q (choose from %v)\n", *name, repro.BenchmarkNames())
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	cfg := repro.DefaultDeviceConfig()
	opts := []repro.SessionOption{
		repro.WithDevice(cfg),
		repro.WithGovernorName(*gov),
		repro.WithSeed(*seed),
		repro.WithAmbientC(*ambient),
	}
	if *ustaLim > 0 {
		fmt.Fprintln(os.Stderr, "ustatrace: training predictor for USTA...")
		trainCfg := cfg
		trainCfg.Seed = *seed
		trainCfg.Thermal.Ambient = *ambient // train in the conditions being traced
		corpus, err := repro.CollectCorpusContext(ctx, trainCfg, []repro.Workload{
			workload.Skype(uint64(*seed) + 100),
			workload.AnTuTuTester(uint64(*seed) + 101),
			workload.StaircaseRamp(uint64(*seed)+102, 0.05, 0.95, 8, 60),
			workload.Idle(300),
		}, 0, 0)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustatrace:", err)
			os.Exit(1)
		}
		pred, err := repro.TrainPredictor(corpus)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustatrace:", err)
			os.Exit(1)
		}
		opts = append(opts, repro.WithController(repro.NewUSTA(pred, *ustaLim)))
	}

	session, err := repro.NewSession(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ustatrace:", err)
		os.Exit(1)
	}

	res, err := session.RunFor(ctx, w, *dur)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ustatrace:", err)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ustatrace: interrupted at t=%.0f s; writing partial trace\n", res.DurSec)
	}
	fmt.Fprintf(os.Stderr, "%s under %s%s: peak skin %.1f °C, peak screen %.1f °C, avg %.2f GHz, energy %.0f J, battery %.0f%%→%.0f%%\n",
		res.Workload, res.Governor, ctrlSuffix(res.Ctrl),
		res.MaxSkinC, res.MaxScreenC, res.AvgFreqMHz/1000, res.EnergyJ,
		res.StartSoC*100, res.EndSoC*100)

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustatrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := res.Trace.WriteCSV(dst); err != nil {
		fmt.Fprintln(os.Stderr, "ustatrace:", err)
		os.Exit(1)
	}
}

func ctrlSuffix(ctrl string) string {
	if ctrl == "" {
		return ""
	}
	return " + " + ctrl
}
