// Command ustatrace runs one workload under a chosen governor (optionally
// wrapped by USTA) and writes the full temperature/frequency trace as CSV —
// the raw material for custom plots.
//
//	ustatrace -workload skype -out skype.csv
//	ustatrace -workload game -governor performance -dur 600
//	ustatrace -workload antutu-tester -usta 37 -out tester_usta.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/governor"
	"repro/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "skype", "one of the 13 paper workloads")
		gov     = flag.String("governor", "ondemand", "ondemand|interactive|conservative|performance|powersave")
		dur     = flag.Float64("dur", 0, "run duration in seconds (0 = workload length)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		out     = flag.String("out", "", "CSV output path (empty = stdout)")
		ustaLim = flag.Float64("usta", 0, "attach USTA with this skin limit in °C (0 = off)")
		ambient = flag.Float64("ambient", 25, "ambient temperature in °C")
	)
	flag.Parse()

	w := workload.ByName(*name, uint64(*seed))
	if w == nil {
		fmt.Fprintf(os.Stderr, "ustatrace: unknown workload %q (choose from %v)\n", *name, workload.BenchmarkNames)
		os.Exit(1)
	}

	cfg := device.DefaultConfig()
	cfg.Seed = *seed
	cfg.Thermal.Ambient = *ambient

	freqs := make([]float64, len(cfg.SoC.OPPs))
	for i, o := range cfg.SoC.OPPs {
		freqs[i] = o.FreqMHz
	}
	var g governor.Governor
	switch *gov {
	case "ondemand":
		g = governor.NewOndemand(freqs)
	case "interactive":
		g = governor.NewInteractive(freqs)
	case "conservative":
		g = governor.NewConservative(len(freqs))
	case "performance":
		g = &governor.Performance{NumLevels: len(freqs)}
	case "powersave":
		g = &governor.Powersave{}
	default:
		fmt.Fprintf(os.Stderr, "ustatrace: unknown governor %q\n", *gov)
		os.Exit(1)
	}

	phone := device.MustNew(cfg, g)
	if *ustaLim > 0 {
		fmt.Fprintln(os.Stderr, "ustatrace: training predictor for USTA...")
		corpus := core.CollectCorpus(cfg, []workload.Workload{
			workload.Skype(uint64(*seed) + 100),
			workload.AnTuTuTester(uint64(*seed) + 101),
			workload.StaircaseRamp(uint64(*seed)+102, 0.05, 0.95, 8, 60),
			workload.Idle(300),
		}, 0)
		pred, err := core.Train(corpus, nil)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustatrace:", err)
			os.Exit(1)
		}
		phone.SetController(core.NewUSTA(pred, *ustaLim))
	}

	res := phone.Run(w, *dur)
	fmt.Fprintf(os.Stderr, "%s under %s%s: peak skin %.1f °C, peak screen %.1f °C, avg %.2f GHz, energy %.0f J, battery %.0f%%→%.0f%%\n",
		res.Workload, res.Governor, ctrlSuffix(res.Ctrl),
		res.MaxSkinC, res.MaxScreenC, res.AvgFreqMHz/1000, res.EnergyJ,
		res.StartSoC*100, res.EndSoC*100)

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ustatrace:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := res.Trace.WriteCSV(dst); err != nil {
		fmt.Fprintln(os.Stderr, "ustatrace:", err)
		os.Exit(1)
	}
}

func ctrlSuffix(ctrl string) string {
	if ctrl == "" {
		return ""
	}
	return " + " + ctrl
}
