// Command ustamap renders a Therminator-style steady-state heat map of the
// back cover for a chosen workload's dissipation split — the spatial
// answer to "why does the paper measure the cover midsection?".
//
//	ustamap -workload skype
//	ustamap -workload antutu-cpu -ambient 30
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/thermal"
	"repro/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "skype", "one of the 13 paper workloads")
		ambient = flag.Float64("ambient", 25, "ambient temperature in °C")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	w := workload.ByName(*name, uint64(*seed))
	if w == nil {
		fmt.Fprintf(os.Stderr, "ustamap: unknown workload %q (choose from %v)\n", *name, workload.BenchmarkNames)
		os.Exit(1)
	}

	// Average the demand over the workload to build a representative
	// dissipation split.
	var cpu, gpu, aux, charge float64
	n := 0
	for t := 0.5; t < w.Duration(); t += 5 {
		s := w.At(t)
		cpu += s.CPUFrac
		gpu += s.GPULoad
		aux += s.AuxWatts
		charge += s.ChargeWatts
		n++
	}
	fn := float64(n)
	cpu, gpu, aux, charge = cpu/fn, gpu/fn, aux/fn, charge/fn

	socW := cpu*3.2 + gpu*1.3
	batteryW := charge + 0.1 // charge heat plus discharge losses
	boardW := aux

	cfg := thermal.PhoneCoverConfig(*ambient)
	m, err := thermal.SolveSurface(cfg, thermal.PhoneCoverSources(cfg, socW, batteryW, boardW))
	if err != nil {
		fmt.Fprintln(os.Stderr, "ustamap:", err)
		os.Exit(1)
	}
	fmt.Printf("%s at %.0f °C ambient — SoC %.2f W, battery %.2f W, board %.2f W\n\n",
		w.Name(), *ambient, socW, batteryW, boardW)
	fmt.Print(m.Render())
	peak, x, y := m.Max()
	fmt.Printf("\nhottest cell: %.1f °C at (%d,%d); surface mean %.1f °C\n", peak, x, y, m.Mean())
}
