// Command ustamap renders a Therminator-style steady-state heat map of the
// back cover for a chosen workload's dissipation split — the spatial
// answer to "why does the paper measure the cover midsection?".
//
//	ustamap -workload skype
//	ustamap -workload antutu-cpu -ambient 30
//	ustamap -workload all            # all 13 maps, solved in parallel
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fleet"
	"repro/internal/thermal"
	"repro/internal/workload"
)

func main() {
	var (
		name    = flag.String("workload", "skype", "one of the 13 paper workloads, a comma-separated list, or \"all\"")
		ambient = flag.Float64("ambient", 25, "ambient temperature in °C")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	var names []string
	if *name == "all" {
		names = append(names, workload.BenchmarkNames...)
	} else {
		names = strings.Split(*name, ",")
	}
	loads := make([]workload.Workload, len(names))
	for i, n := range names {
		// ByName returns a concrete *Program; assign only after the nil
		// check so a miss doesn't become a typed-nil interface.
		w := workload.ByName(strings.TrimSpace(n), uint64(*seed))
		if w == nil {
			fmt.Fprintf(os.Stderr, "ustamap: unknown workload %q (choose from %v)\n", n, workload.BenchmarkNames)
			os.Exit(1)
		}
		loads[i] = w
	}

	// The surface solves are independent linear systems; fan them out and
	// print in input order.
	type outcome struct {
		text string
		err  error
	}
	outcomes := make([]outcome, len(loads))
	fleet.ForEach(len(loads), 0, func(i int) {
		text, err := renderMap(loads[i], *ambient)
		outcomes[i] = outcome{text, err}
	})
	for i, o := range outcomes {
		if o.err != nil {
			fmt.Fprintln(os.Stderr, "ustamap:", o.err)
			os.Exit(1)
		}
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(o.text)
	}
}

// renderMap solves and formats one workload's cover map.
func renderMap(w workload.Workload, ambient float64) (string, error) {
	// Average the demand over the workload to build a representative
	// dissipation split.
	var cpu, gpu, aux, charge float64
	n := 0
	for t := 0.5; t < w.Duration(); t += 5 {
		s := w.At(t)
		cpu += s.CPUFrac
		gpu += s.GPULoad
		aux += s.AuxWatts
		charge += s.ChargeWatts
		n++
	}
	fn := float64(n)
	cpu, gpu, aux, charge = cpu/fn, gpu/fn, aux/fn, charge/fn

	socW := cpu*3.2 + gpu*1.3
	batteryW := charge + 0.1 // charge heat plus discharge losses
	boardW := aux

	cfg := thermal.PhoneCoverConfig(ambient)
	m, err := thermal.SolveSurface(cfg, thermal.PhoneCoverSources(cfg, socW, batteryW, boardW))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s at %.0f °C ambient — SoC %.2f W, battery %.2f W, board %.2f W\n\n",
		w.Name(), ambient, socW, batteryW, boardW)
	b.WriteString(m.Render())
	peak, x, y := m.Max()
	fmt.Fprintf(&b, "\nhottest cell: %.1f °C at (%d,%d); surface mean %.1f °C\n", peak, x, y, m.Mean())
	return b.String(), nil
}
