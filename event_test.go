package repro_test

import (
	"context"
	"math"
	"runtime"
	"testing"

	"repro"
)

// eventExec runs the reduced Table 1 scenario under the given options and
// returns results plus the telemetry fingerprint.
func eventExec(t *testing.T, label string, traceFree bool, opts ...repro.ScenarioOption) ([]repro.JobResult, *countingSink) {
	t.Helper()
	spec, err := repro.LoadScenario(table1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	spec.TraceFree = traceFree
	cs := newCountingSink()
	res, err := repro.RunScenario(context.Background(), spec,
		append([]repro.ScenarioOption{
			repro.ScenarioPredictor(scenarioPipeline().Predictor()),
			repro.ScenarioSink(cs),
		}, opts...)...)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return res.Results, cs
}

// requireRunsIdentical asserts byte-identity across two scenario runs:
// every aggregate cell, every trace cell, and the telemetry fingerprint.
func requireRunsIdentical(t *testing.T, label string, got, want []repro.JobResult, gotSink, wantSink *countingSink) {
	t.Helper()
	bits := math.Float64bits
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i].Result, want[i].Result
		if got[i].SeedUsed != want[i].SeedUsed || got[i].Name != want[i].Name {
			t.Fatalf("%s: job %d identity diverged", label, i)
		}
		cells := [][2]float64{
			{g.MaxSkinC, w.MaxSkinC}, {g.MaxScreenC, w.MaxScreenC},
			{g.MaxDieC, w.MaxDieC}, {g.MaxBatteryC, w.MaxBatteryC},
			{g.AvgFreqMHz, w.AvgFreqMHz}, {g.AvgUtil, w.AvgUtil},
			{g.EnergyJ, w.EnergyJ}, {g.WorkDone, w.WorkDone},
			{g.WorkDemanded, w.WorkDemanded}, {g.StartSoC, w.StartSoC},
			{g.EndSoC, w.EndSoC},
		}
		for ci, c := range cells {
			if bits(c[0]) != bits(c[1]) {
				t.Fatalf("%s: job %d cell %d = %v, reference %v", label, i, ci, c[0], c[1])
			}
		}
		if (g.Trace == nil) != (w.Trace == nil) {
			t.Fatalf("%s: job %d trace presence diverged", label, i)
		}
		if g.Trace != nil {
			if g.Trace.Len() != w.Trace.Len() {
				t.Fatalf("%s: job %d trace rows %d vs %d", label, i, g.Trace.Len(), w.Trace.Len())
			}
			for ti := range g.Trace.TimeSec {
				if bits(g.Trace.TimeSec[ti]) != bits(w.Trace.TimeSec[ti]) {
					t.Fatalf("%s: job %d time axis row %d diverged", label, i, ti)
				}
			}
			for si, gs := range g.Trace.Series {
				ws := w.Trace.Series[si]
				for ri := range gs.Values {
					if bits(gs.Values[ri]) != bits(ws.Values[ri]) {
						t.Fatalf("%s: job %d trace %s row %d = %v, reference %v",
							label, i, gs.Name, ri, gs.Values[ri], ws.Values[ri])
					}
				}
			}
		}
	}
	for i := range want {
		if gotSink.counts[i] != wantSink.counts[i] || gotSink.sums[i] != wantSink.sums[i] {
			t.Fatalf("%s: job %d telemetry diverged: %d samples / sum %v, reference %d / %v",
				label, i, gotSink.counts[i], gotSink.sums[i], wantSink.counts[i], wantSink.sums[i])
		}
		if wantSink.counts[i] == 0 {
			t.Fatalf("job %d delivered no samples", i)
		}
	}
}

// TestEventTickMatchesOffTable1 is the event plumbing's acceptance pin:
// EventTick routes the whole Table 1 grid — USTA controllers included —
// through the event engine with every tick canonical, and must be
// byte-identical to the plain loop on the local, batched and sharded
// runners, traced and trace-free.
func TestEventTickMatchesOffTable1(t *testing.T) {
	for _, traceFree := range []bool{false, true} {
		mode := "traced"
		if traceFree {
			mode = "trace-free"
		}
		ref, refSink := eventExec(t, "off "+mode, traceFree, repro.ScenarioWorkers(1))

		got, gotSink := eventExec(t, "tick local "+mode, traceFree,
			repro.ScenarioWorkers(runtime.GOMAXPROCS(0)), repro.ScenarioEventMode(repro.EventTick))
		requireRunsIdentical(t, "tick local "+mode, got, ref, gotSink, refSink)

		got, gotSink = eventExec(t, "tick batched "+mode, traceFree,
			repro.ScenarioEventMode(repro.EventTick), repro.WithBatchedRunner())
		requireRunsIdentical(t, "tick batched "+mode, got, ref, gotSink, refSink)

		if !traceFree {
			got, gotSink = eventExec(t, "tick sharded", traceFree,
				repro.ScenarioEventMode(repro.EventTick), repro.ScenarioShards(2))
			requireRunsIdentical(t, "tick sharded", got, ref, gotSink, refSink)
		}
	}
}

// TestEventJumpRunnerInvariance pins the jump engine's determinism
// contract: the mode changes the numbers relative to the tick oracle
// (held-input discretization), but those numbers must not depend on the
// runner shape or parallelism — local at 1 worker, local at GOMAXPROCS,
// batched and sharded all byte-identical.
func TestEventJumpRunnerInvariance(t *testing.T) {
	ref, refSink := eventExec(t, "jump w1", false,
		repro.ScenarioWorkers(1), repro.ScenarioEventMode(repro.EventJump))

	got, gotSink := eventExec(t, "jump wN", false,
		repro.ScenarioWorkers(runtime.GOMAXPROCS(0)), repro.ScenarioEventMode(repro.EventJump))
	requireRunsIdentical(t, "jump wN", got, ref, gotSink, refSink)

	got, gotSink = eventExec(t, "jump batched", false,
		repro.ScenarioEventMode(repro.EventJump), repro.WithBatchedRunner())
	requireRunsIdentical(t, "jump batched", got, ref, gotSink, refSink)

	got, gotSink = eventExec(t, "jump sharded", false,
		repro.ScenarioEventMode(repro.EventJump), repro.ScenarioShards(2))
	requireRunsIdentical(t, "jump sharded", got, ref, gotSink, refSink)
}

// TestEventJumpCloseToOracleTable1 bounds the held-input discretization
// on the full grid, controllers included: peak temperatures within a
// small fraction of a kelvin, energy and duty-cycle aggregates within a
// small relative error. USTA runs may legitimately quantize an occasional
// clamp decision differently (the controller reads binned sensor
// records), which is why this plane is a tolerance, not an identity.
func TestEventJumpCloseToOracleTable1(t *testing.T) {
	ref, _ := eventExec(t, "off", true, repro.ScenarioWorkers(1))
	got, _ := eventExec(t, "jump", true,
		repro.ScenarioWorkers(1), repro.ScenarioEventMode(repro.EventJump))

	const tempTol = 0.25 // °C on peaks
	const relTol = 0.05  // on energy / frequency / utilization aggregates
	rel := func(a, b float64) float64 {
		d := math.Abs(b)
		if d < 1 {
			d = 1
		}
		return math.Abs(a-b) / d
	}
	for i := range ref {
		g, w := got[i].Result, ref[i].Result
		temps := [][2]float64{
			{g.MaxSkinC, w.MaxSkinC}, {g.MaxScreenC, w.MaxScreenC},
			{g.MaxDieC, w.MaxDieC}, {g.MaxBatteryC, w.MaxBatteryC},
		}
		for ci, c := range temps {
			if d := math.Abs(c[0] - c[1]); d > tempTol {
				t.Errorf("job %d (%s) temp cell %d off by %.4f °C (jump %.4f, oracle %.4f)",
					i, ref[i].Name, ci, d, c[0], c[1])
			}
		}
		rels := [][2]float64{
			{g.EnergyJ, w.EnergyJ}, {g.AvgFreqMHz, w.AvgFreqMHz},
			{g.AvgUtil, w.AvgUtil}, {g.WorkDone, w.WorkDone}, {g.EndSoC, w.EndSoC},
		}
		for ci, c := range rels {
			if d := rel(c[0], c[1]); d > relTol {
				t.Errorf("job %d (%s) aggregate cell %d rel err %.4f (jump %v, oracle %v)",
					i, ref[i].Name, ci, d, c[0], c[1])
			}
		}
	}
}
