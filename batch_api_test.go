package repro_test

import (
	"context"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro"
)

// stubRunner is a Runner that is neither the batch nor the shard runner.
type stubRunner struct{}

func (stubRunner) Run(ctx context.Context, cfg repro.FleetConfig, jobs []repro.Job) []repro.JobResult {
	return make([]repro.JobResult, len(jobs))
}

// TestWithBatchedRunnerRejectsForeignRunner pins the conflict check:
// combining WithBatchedRunner with a custom non-shard ScenarioRunner must
// error instead of silently running unbatched.
func TestWithBatchedRunnerRejectsForeignRunner(t *testing.T) {
	spec, err := repro.LoadScenario(table1SpecPath)
	if err != nil {
		t.Fatal(err)
	}
	_, err = repro.RunScenario(context.Background(), spec,
		repro.ScenarioPredictor(scenarioPipeline().Predictor()),
		repro.ScenarioRunner(stubRunner{}), repro.WithBatchedRunner())
	if err == nil || !strings.Contains(err.Error(), "WithBatchedRunner") {
		t.Fatalf("conflicting options gave err = %v, want a WithBatchedRunner conflict error", err)
	}
	// The compatible combinations stay accepted: an explicit batch runner…
	res, err := repro.RunScenario(context.Background(), spec,
		repro.ScenarioPredictor(scenarioPipeline().Predictor()),
		repro.ScenarioRunner(repro.NewBatchRunner()), repro.WithBatchedRunner())
	if err != nil {
		t.Fatalf("explicit batch runner rejected: %v", err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	// …and a shard runner (whose copy gains batched workers).
	res, err = repro.RunScenario(context.Background(), spec,
		repro.ScenarioPredictor(scenarioPipeline().Predictor()),
		repro.ScenarioRunner(repro.NewShardRunner(2)), repro.WithBatchedRunner())
	if err != nil {
		t.Fatalf("shard runner rejected: %v", err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchRunnerMatchesLocalTable1 is the cohort-batched engine's
// acceptance test: the paper's Table 1 scenario through the lockstep
// BatchRunner — traced and trace-free, at one worker and at GOMAXPROCS —
// must be byte-identical to the in-process LocalRunner in every cell,
// every retained per-job trace row, and the streamed telemetry.
func TestBatchRunnerMatchesLocalTable1(t *testing.T) {
	pred := scenarioPipeline().Predictor()

	type run struct {
		results []repro.JobResult
		sink    *countingSink
	}
	exec := func(label string, traceFree bool, opts ...repro.ScenarioOption) run {
		t.Helper()
		spec, err := repro.LoadScenario(table1SpecPath)
		if err != nil {
			t.Fatal(err)
		}
		spec.TraceFree = traceFree
		cs := newCountingSink()
		res, err := repro.RunScenario(context.Background(), spec,
			append([]repro.ScenarioOption{repro.ScenarioPredictor(pred), repro.ScenarioSink(cs)}, opts...)...)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if err := res.FirstError(); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return run{results: res.Results, sink: cs}
	}

	bits := math.Float64bits
	requireEqual := func(label string, got, want run) {
		t.Helper()
		for i := range want.results {
			g, w := got.results[i].Result, want.results[i].Result
			if got.results[i].SeedUsed != want.results[i].SeedUsed ||
				got.results[i].Name != want.results[i].Name {
				t.Fatalf("%s: job %d identity diverged", label, i)
			}
			cells := [][2]float64{
				{g.MaxSkinC, w.MaxSkinC}, {g.MaxScreenC, w.MaxScreenC},
				{g.MaxDieC, w.MaxDieC}, {g.AvgFreqMHz, w.AvgFreqMHz},
				{g.AvgUtil, w.AvgUtil}, {g.EnergyJ, w.EnergyJ},
				{g.WorkDone, w.WorkDone}, {g.WorkDemanded, w.WorkDemanded},
				{g.StartSoC, w.StartSoC}, {g.EndSoC, w.EndSoC},
			}
			for ci, c := range cells {
				if bits(c[0]) != bits(c[1]) {
					t.Fatalf("%s: job %d cell %d = %v, local %v", label, i, ci, c[0], c[1])
				}
			}
			if (g.Trace == nil) != (w.Trace == nil) {
				t.Fatalf("%s: job %d trace presence diverged", label, i)
			}
			if g.Trace != nil {
				if g.Trace.Len() != w.Trace.Len() {
					t.Fatalf("%s: job %d trace rows %d vs %d", label, i, g.Trace.Len(), w.Trace.Len())
				}
				for ti := range g.Trace.TimeSec {
					if bits(g.Trace.TimeSec[ti]) != bits(w.Trace.TimeSec[ti]) {
						t.Fatalf("%s: job %d time axis row %d diverged", label, i, ti)
					}
				}
				for si, gs := range g.Trace.Series {
					ws := w.Trace.Series[si]
					for ri := range gs.Values {
						if bits(gs.Values[ri]) != bits(ws.Values[ri]) {
							t.Fatalf("%s: job %d trace %s row %d = %v, local %v",
								label, i, gs.Name, ri, gs.Values[ri], ws.Values[ri])
						}
					}
				}
			}
		}
		for i := range want.results {
			if got.sink.counts[i] != want.sink.counts[i] || got.sink.sums[i] != want.sink.sums[i] {
				t.Fatalf("%s: job %d telemetry diverged: %d samples / sum %v, local %d / %v",
					label, i, got.sink.counts[i], got.sink.sums[i], want.sink.counts[i], want.sink.sums[i])
			}
			if want.sink.counts[i] == 0 {
				t.Fatalf("job %d delivered no samples", i)
			}
		}
	}

	for _, traceFree := range []bool{false, true} {
		mode := "traced"
		if traceFree {
			mode = "trace-free"
		}
		ref := exec("local "+mode, traceFree, repro.ScenarioWorkers(1))
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			got := exec("batched "+mode, traceFree,
				repro.ScenarioWorkers(workers), repro.WithBatchedRunner())
			requireEqual(mode+" batched", got, ref)
		}
	}
}
